(** Descriptive statistics used by the experiment harness.

    All functions take plain [float array]s (or lists where noted) and are
    total over non-empty input; empty input raises [Invalid_argument] except
    where a neutral value exists. *)

val mean : float array -> float
(** Arithmetic mean.  Raises on empty input. *)

val variance : float array -> float
(** Population variance (biased, divides by [n]).  Raises on empty
    input.  This is the right estimator when the data {e is} the whole
    population — the descriptive uses keep it deliberately:
    {!summarize}/{!stddev} (spread of the values at hand) and
    [Actor_network]'s position dispersion.  For inference from a
    sample (t-tests, confidence intervals) use {!sample_variance};
    everything in {!Test} does. *)

val stddev : float array -> float
(** Population standard deviation. *)

val sample_variance : float array -> float
(** Unbiased sample variance (divides by [n-1]) — the estimator
    inference needs.  Raises on fewer than 2 points. *)

val sample_stddev : float array -> float
(** Square root of {!sample_variance}. *)

val median : float array -> float
(** Median (average of middle two for even length).  Does not mutate its
    argument.  Raises on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics.  Raises on empty input or out-of-range [p]. *)

val minimum : float array -> float
val maximum : float array -> float

val total : float array -> float
(** Sum; [0.] on empty input. *)

val gini : float array -> float
(** Gini coefficient of a non-negative distribution: 0 = perfectly equal,
    approaching 1 = concentrated.  Raises if any value is negative or the
    sum is zero. *)

val hhi : float array -> float
(** Herfindahl–Hirschman index of market shares computed from raw sizes:
    sum of squared shares, in (0, 1].  1 = monopoly.  Raises on zero
    total. *)

val correlation : float array -> float array -> float
(** Pearson correlation.  Raises on length mismatch, length < 2, or zero
    variance. *)

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] per bin over the data
    range.  Default 10 bins.  Raises on empty input. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary
(** Five-number-plus summary.  Raises on empty input. *)

val pp_summary : Format.formatter -> summary -> unit

(** Hypothesis tests and confidence intervals (pareto-style t-tests,
    self-contained: the Student CDF is a hand-rolled regularized
    incomplete beta, no external stats dependency).

    Every test reports the t statistic, the degrees of freedom, and
    the p-value under the chosen {!Test.alternative}.  Degenerate
    inputs with zero spread return a non-NaN verdict: zero observed
    difference gives [statistic = 0.] (p-value 1 two-sided), a nonzero
    difference over zero spread gives an infinite statistic (p-value 0
    in its direction).  All functions are deterministic — same inputs,
    same bits — which is what lets sweep reports be byte-identical
    across domain counts. *)
module Test : sig
  type alternative =
    | TwoSided  (** H1: means differ *)
    | Less  (** H1: first mean is smaller *)
    | Greater  (** H1: first mean is larger *)

  type result = { statistic : float; df : float; pvalue : float }

  val one_sample : ?alternative:alternative -> mean:float -> float array -> result
  (** Student one-sample t-test of H0: the population mean is [mean].
      Raises on fewer than 2 points. *)

  val two_sample :
    ?alternative:alternative ->
    ?shift:float ->
    ?equal_variance:bool ->
    float array ->
    float array ->
    result
  (** Two-sample t-test of H0: [mean xs - mean ys = shift] (default
      [0.]).  [equal_variance:false] (default) is Welch's test with
      Welch–Satterthwaite degrees of freedom; [true] is Student's
      pooled-variance test with [n1 + n2 - 2].  Raises on fewer than 2
      points in either sample. *)

  val paired : ?alternative:alternative -> ?shift:float -> float array -> float array -> result
  (** Paired t-test: {!one_sample} on the per-index differences
      [xs.(i) -. ys.(i)] against [shift].  Raises on length mismatch
      or fewer than 2 pairs. *)

  val mean_ci : ?confidence:float -> float array -> float * float
  (** Student-t confidence interval [(lo, hi)] for the mean
      (default 95%).  Raises on fewer than 2 points or a confidence
      outside (0, 1). *)

  val bootstrap_mean_ci :
    ?confidence:float -> ?replicates:int -> seed:int -> float array -> float * float
  (** Percentile-bootstrap confidence interval for the mean: the
      fallback for metrics too non-normal for the t interval.
      Deterministic — resampling is driven by a fresh {!Rng} from
      [seed] (default 1000 replicates). *)

  val student_cdf : df:float -> float -> float
  (** [student_cdf ~df t] is [P(T <= t)] for Student's t with [df]
      degrees of freedom.  Exposed for tests and plotting. *)

  val t_quantile : df:float -> float -> float
  (** Inverse of {!student_cdf} (bisection; [p] in (0, 1)). *)

  val incomplete_beta : float -> float -> float -> float
  (** Regularized incomplete beta [I_x(a, b)] — the primitive under
      the CDF, exposed for pinned-value tests. *)

  val log_gamma : float -> float
end
