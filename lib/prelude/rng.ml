(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast Splittable
   Pseudorandom Number Generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let copy t = { state = t.state }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod n in
    if r - v > max_int - n + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits mapped to [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (r /. 9007199254740992.0)

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  (* Bind u1 before u2: [let _ and _] has unspecified evaluation order,
     which made the draw sequence compiler-dependent. *)
  let u1 = nonzero () in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let pareto t ~alpha ~x_min =
  if alpha <= 0.0 || x_min <= 0.0 then
    invalid_arg "Rng.pareto: parameters must be positive";
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  x_min /. (nonzero () ** (1.0 /. alpha))

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let weighted_index t w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Rng.weighted_index: empty weights";
  let total = Array.fold_left (fun acc x ->
    if x < 0.0 then invalid_arg "Rng.weighted_index: negative weight"
    else acc +. x) 0.0 w
  in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: zero total weight";
  let target = float t total in
  (* [last_pos] is the most recent positive-weight index: if float
     rounding makes the running sum fall short of [target] even at the
     end, we return it rather than defaulting to a possibly zero-weight
     [n - 1]; a zero-weight index is never returned. *)
  let rec scan i acc last_pos =
    if i = n then last_pos
    else
      let acc = acc +. w.(i) in
      let last_pos = if w.(i) > 0.0 then i else last_pos in
      if target < acc then last_pos else scan (i + 1) acc last_pos
  in
  scan 0 0.0 (-1)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr

let sample t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let pool = Array.copy arr in
  (* Partial Fisher-Yates: the first k slots end up uniformly sampled. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k
