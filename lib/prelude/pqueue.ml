type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry;
      (* Placeholder written into vacated slots so the heap never
         retains a popped entry (or its payload) behind [size].  Slots
         at indices >= size are write-only, so the unsafe [value] can
         never be read. *)
}

let create () =
  {
    data = [||];
    size = 0;
    next_seq = 0;
    dummy = { key = nan; seq = -1; value = Obj.magic () };
  }

let length q = q.size

let is_empty q = q.size = 0

(* entry a sorts before entry b: smaller key first, then earlier seq. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap q.dummy in
    Array.blit q.data 0 ndata 0 q.size;
    q.data <- ndata
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.data.(i) q.data.(parent) then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(parent);
      q.data.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before q.data.(l) q.data.(!smallest) then smallest := l;
  if r < q.size && before q.data.(r) q.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.data.(i) in
    q.data.(i) <- q.data.(!smallest);
    q.data.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q key value =
  let e = { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q;
  q.data.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.data.(0) in
    Some (e.key, e.value)

let pop q =
  if q.size = 0 then None
  else begin
    let e = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      q.data.(q.size) <- q.dummy;
      sift_down q 0
    end
    else q.data.(0) <- q.dummy;
    Some (e.key, e.value)
  end

let clear q =
  q.data <- [||];
  q.size <- 0

let to_sorted_list q =
  let entries = Array.sub q.data 0 q.size in
  let copy =
    { data = entries; size = q.size; next_seq = q.next_seq; dummy = q.dummy }
  in
  (* Array.sub shares no structure with q.data mutations below. *)
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some kv -> drain (kv :: acc)
  in
  drain []
