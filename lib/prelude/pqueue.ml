(* Struct-of-arrays binary heap: three parallel arrays (key, insertion
   seq, payload) instead of one boxed entry record per element.  A push
   is three array writes and allocates nothing; the old representation
   allocated a 4-word record per push, which made the queue the
   dominant allocator on dense event horizons. *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

(* Placeholder written into vacated payload slots so the heap never
   retains a popped value behind [size].  Slots at indices >= size are
   write-only, so the unsafe value can never be read.  An immediate
   makes [Array.make] build a uniform (non-flat) array even when ['a]
   turns out to be [float]; all access is polymorphic, so the
   representation stays consistent. *)
let dummy : 'a. unit -> 'a = fun () -> Obj.magic 0

let create () =
  { keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* element i sorts before element j: smaller key first, then earlier
   seq (FIFO among equal keys, which discrete-event simulation
   requires for determinism) *)
let[@inline] before q i j =
  let ki = Array.unsafe_get q.keys i and kj = Array.unsafe_get q.keys j in
  ki < kj
  || (ki = kj && Array.unsafe_get q.seqs i < Array.unsafe_get q.seqs j)

let[@inline] swap q i j =
  let k = q.keys.(i) in
  q.keys.(i) <- q.keys.(j);
  q.keys.(j) <- k;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let v = q.vals.(i) in
  q.vals.(i) <- q.vals.(j);
  q.vals.(j) <- v

let grow q =
  let cap = Array.length q.keys in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nkeys = Array.make ncap nan in
    let nseqs = Array.make ncap (-1) in
    let nvals = Array.make ncap (dummy ()) in
    Array.blit q.keys 0 nkeys 0 q.size;
    Array.blit q.seqs 0 nseqs 0 q.size;
    Array.blit q.vals 0 nvals 0 q.size;
    q.keys <- nkeys;
    q.seqs <- nseqs;
    q.vals <- nvals
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before q l !smallest then smallest := l;
  if r < q.size && before q r !smallest then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push_tagged q key value =
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  grow q;
  let i = q.size in
  q.keys.(i) <- key;
  q.seqs.(i) <- seq;
  q.vals.(i) <- value;
  q.size <- i + 1;
  sift_up q i;
  seq

let push q key value = ignore (push_tagged q key value)

let min_key q =
  if q.size = 0 then invalid_arg "Pqueue.min_key: empty queue";
  q.keys.(0)

let min_seq q =
  if q.size = 0 then invalid_arg "Pqueue.min_seq: empty queue";
  q.seqs.(0)

let peek q = if q.size = 0 then None else Some (q.keys.(0), q.vals.(0))

let pop_min q =
  if q.size = 0 then invalid_arg "Pqueue.pop_min: empty queue";
  let v = q.vals.(0) in
  let last = q.size - 1 in
  q.size <- last;
  if last > 0 then begin
    q.keys.(0) <- q.keys.(last);
    q.seqs.(0) <- q.seqs.(last);
    q.vals.(0) <- q.vals.(last);
    q.vals.(last) <- dummy ();
    sift_down q 0
  end
  else q.vals.(0) <- dummy ();
  v

let pop q =
  if q.size = 0 then None
  else
    let key = q.keys.(0) in
    Some (key, pop_min q)

let clear q =
  q.keys <- [||];
  q.seqs <- [||];
  q.vals <- [||];
  q.size <- 0

let to_sorted_list q =
  let copy =
    {
      keys = Array.sub q.keys 0 q.size;
      seqs = Array.sub q.seqs 0 q.size;
      vals = Array.sub q.vals 0 q.size;
      size = q.size;
      next_seq = q.next_seq;
    }
  in
  (* Array.sub shares no structure with q's mutations below. *)
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some kv -> drain (kv :: acc)
  in
  drain []
