(** Fixed-size domain pool for embarrassingly-parallel maps (OCaml 5).

    [map] fans a function out over a fixed set of worker domains.  Work
    is handed out through a chunked queue — an atomic cursor over the
    input index space — so there is no work stealing and no per-item
    lock contention.  Results are written into per-index slots, so the
    output order always matches the input order regardless of how the
    items were scheduled: [map ~domains:n f xs] returns exactly
    [List.map f xs] for any [n] whenever [f x] depends only on [x].

    Intended for workloads whose items share no mutable state (each
    experiment in the registry builds its own [Rng] and [Engine]); the
    pool itself adds no synchronization around [f]. *)

val default_domains : unit -> int
(** Domains used when [?domains] is omitted:
    [Domain.recommended_domain_count ()] clamped to [\[1, 8\]]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?domains f xs] applies [f] to every element of [xs] using up
    to [domains] domains (the calling domain participates as one of
    them) and returns the results in input order.

    [~domains:1] — or a single-element or empty [xs] — runs
    sequentially in the calling domain with no domain spawned at all,
    which is the determinism-pinning mode CI uses.

    If [f] raises on some elements, all remaining work still completes,
    and then the exception of the {e earliest} failing input (with its
    original backtrace) is re-raised in the calling domain.  Raises
    [Invalid_argument] if [domains < 1]. *)
