(** Fixed-size domain pool for embarrassingly-parallel maps (OCaml 5).

    [map] fans a function out over a fixed set of worker domains.  Work
    is handed out through a chunked queue — an atomic cursor over the
    input index space — so there is no work stealing and no per-item
    lock contention.  Results are written into per-index slots, so the
    output order always matches the input order regardless of how the
    items were scheduled: [map ~domains:n f xs] returns exactly
    [List.map f xs] for any [n] whenever [f x] depends only on [x].

    Intended for workloads whose items share no mutable state (each
    experiment in the registry builds its own [Rng] and [Engine]); the
    pool itself adds no synchronization around [f]. *)

val default_domains : unit -> int
(** Domains used when [?domains] is omitted:
    [Domain.recommended_domain_count ()] clamped to [\[1, 8\]]. *)

val domains_of_string : string -> (int, string) result
(** Parse a [--domains] argument: trimmed decimal integer [>= 1].
    [Error] carries the message entry points print before exiting 2 —
    the one place both [bench/main] and the CLI validate the flag, so
    garbage can never silently fall back to the default. *)

type stats = {
  workers : int;
  tasks : int array;  (** items executed per worker *)
  busy_s : float array;  (** wall time spent inside [f] per worker *)
  wall_s : float;  (** wall time of the whole [map] *)
}
(** Per-worker load telemetry for one [map] call.  [wall_s -. busy_s.(w)]
    approximates worker [w]'s queue-wait (startup, chunk fetches, and
    idling after the tail was handed out); the spread of [busy_s] is
    the load imbalance the battery report surfaces. *)

val last_stats : unit -> stats option
(** Stats of the most recently completed [map], recorded only while
    {!Tussle_obs.Metrics} or {!Tussle_obs.Trace} is enabled ([None]
    before the first such call).  Each worker additionally counts
    [pool.tasks] / [pool.maps] and observes [pool.task_run_s], and
    wraps every item in a ["pool.task"] span when tracing. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?domains f xs] applies [f] to every element of [xs] using up
    to [domains] domains (the calling domain participates as one of
    them) and returns the results in input order.

    [~domains:1] — or a single-element or empty [xs] — runs
    sequentially in the calling domain with no domain spawned at all,
    which is the determinism-pinning mode CI uses.

    If [f] raises on some elements, all remaining work still completes,
    and then the exception of the {e earliest} failing input (with its
    original backtrace) is re-raised in the calling domain.  Raises
    [Invalid_argument] if [domains < 1]. *)
