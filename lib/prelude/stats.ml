let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let total xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  check_nonempty "Stats.mean" xs;
  total xs /. float_of_int (Array.length xs)

let sum_sq_dev xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs

let variance xs =
  check_nonempty "Stats.variance" xs;
  sum_sq_dev xs /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let sample_variance xs =
  if Array.length xs < 2 then
    invalid_arg "Stats.sample_variance: need at least 2 points";
  sum_sq_dev xs /. float_of_int (Array.length xs - 1)

let sample_stddev xs = sqrt (sample_variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  check_nonempty "Stats.median" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2)
  else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then ys.(lo)
    else
      let frac = rank -. float_of_int lo in
      ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  Array.fold_left max xs.(0) xs

let gini xs =
  check_nonempty "Stats.gini" xs;
  Array.iter (fun x -> if x < 0.0 then invalid_arg "Stats.gini: negative value") xs;
  let s = total xs in
  if s <= 0.0 then invalid_arg "Stats.gini: zero total";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  (* Gini = (2 * sum_i i*y_i) / (n * sum y) - (n+1)/n  with 1-based i. *)
  let weighted = ref 0.0 in
  for i = 0 to n - 1 do
    weighted := !weighted +. (float_of_int (i + 1) *. ys.(i))
  done;
  let nf = float_of_int n in
  ((2.0 *. !weighted) /. (nf *. s)) -. ((nf +. 1.0) /. nf)

let hhi xs =
  check_nonempty "Stats.hhi" xs;
  let s = total xs in
  if s <= 0.0 then invalid_arg "Stats.hhi: zero total";
  Array.fold_left (fun acc x -> acc +. ((x /. s) ** 2.0)) 0.0 xs

let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then invalid_arg "Stats.correlation: need at least 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then
    invalid_arg "Stats.correlation: zero variance";
  !sxy /. sqrt (!sxx *. !syy)

let histogram ?(bins = 10) xs =
  check_nonempty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = minimum xs and hi = maximum xs in
  let width =
    if hi > lo then (hi -. lo) /. float_of_int bins else 1.0
  in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi
    (fun i c ->
      (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
    counts

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  max : float;
}

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p25 = percentile xs 25.0;
    p50 = percentile xs 50.0;
    p75 = percentile xs 75.0;
    max = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p25=%.4g p50=%.4g p75=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.p25 s.p50 s.p75 s.max

(* ---------- hypothesis tests ---------- *)

module Test = struct
  type alternative = TwoSided | Less | Greater

  type result = { statistic : float; df : float; pvalue : float }

  (* Lanczos approximation (g = 7, 9 terms): |relative error| < 1e-13
     over the positive reals, far tighter than the 1e-4 the verdicts
     need. *)
  let lanczos =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028;
      771.32342877765313; -176.61502916214059; 12.507343278686905;
      -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
    |]

  let rec log_gamma x =
    if x < 0.5 then
      (* reflection keeps the series out of its ill-conditioned range *)
      log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
    else
      let x = x -. 1.0 in
      let a = ref lanczos.(0) in
      for i = 1 to 8 do
        a := !a +. (lanczos.(i) /. (x +. float_of_int i))
      done;
      let t = x +. 7.5 in
      (0.5 *. log (2.0 *. Float.pi))
      +. ((x +. 0.5) *. log t)
      -. t +. log !a

  (* Continued fraction for the regularized incomplete beta (modified
     Lentz); converges in a few dozen iterations for the x ranges the
     CDF below feeds it. *)
  let betacf a b x =
    let max_iter = 300 and eps = 3e-15 and fpmin = 1e-300 in
    let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
    let c = ref 1.0 in
    let d = ref (1.0 -. (qab *. x /. qap)) in
    if Float.abs !d < fpmin then d := fpmin;
    d := 1.0 /. !d;
    let h = ref !d in
    let m = ref 1 in
    let continue = ref true in
    while !continue && !m <= max_iter do
      let mf = float_of_int !m in
      let m2 = 2.0 *. mf in
      let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
      d := 1.0 +. (aa *. !d);
      if Float.abs !d < fpmin then d := fpmin;
      c := 1.0 +. (aa /. !c);
      if Float.abs !c < fpmin then c := fpmin;
      d := 1.0 /. !d;
      h := !h *. !d *. !c;
      let aa =
        -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
      in
      d := 1.0 +. (aa *. !d);
      if Float.abs !d < fpmin then d := fpmin;
      c := 1.0 +. (aa /. !c);
      if Float.abs !c < fpmin then c := fpmin;
      d := 1.0 /. !d;
      let del = !d *. !c in
      h := !h *. del;
      if Float.abs (del -. 1.0) < eps then continue := false;
      incr m
    done;
    !h

  let incomplete_beta a b x =
    if a <= 0.0 || b <= 0.0 then
      invalid_arg "Stats.Test.incomplete_beta: a and b must be positive";
    if x <= 0.0 then 0.0
    else if x >= 1.0 then 1.0
    else
      let bt =
        exp
          (log_gamma (a +. b) -. log_gamma a -. log_gamma b
          +. (a *. log x)
          +. (b *. log (1.0 -. x)))
      in
      if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
      else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)

  let student_cdf ~df t =
    if not (df > 0.0) then
      invalid_arg "Stats.Test.student_cdf: df must be positive";
    if t <> t then nan
    else if t = infinity then 1.0
    else if t = neg_infinity then 0.0
    else
      let x = df /. (df +. (t *. t)) in
      let tail = 0.5 *. incomplete_beta (df /. 2.0) 0.5 x in
      if t >= 0.0 then 1.0 -. tail else tail

  let pvalue_of ~alternative ~df t =
    let less = student_cdf ~df t in
    match alternative with
    | Less -> less
    | Greater -> 1.0 -. less
    | TwoSided -> min 1.0 (2.0 *. min less (1.0 -. less))

  (* Degenerate inputs (zero spread, so the t denominator vanishes)
     still get a non-NaN verdict: no observed difference is "no
     evidence" (t = 0), a nonzero difference with zero spread is
     treated as infinitely significant in its direction.  This is
     where we deliberately diverge from pareto, whose all-zeros
     one-sample test returns NaN/NaN. *)
  let finish ~alternative ~df ~diff ~se =
    let statistic =
      if se > 0.0 then diff /. se
      else if diff = 0.0 then 0.0
      else if diff > 0.0 then infinity
      else neg_infinity
    in
    let pvalue =
      if Float.is_finite statistic then pvalue_of ~alternative ~df statistic
      else
        match (alternative, statistic > 0.0) with
        | TwoSided, _ -> 0.0
        | Greater, true | Less, false -> 0.0
        | Greater, false | Less, true -> 1.0
    in
    { statistic; df; pvalue }

  let one_sample ?(alternative = TwoSided) ~mean:mu xs =
    let n = Array.length xs in
    if n < 2 then invalid_arg "Stats.Test.one_sample: need at least 2 points";
    let nf = float_of_int n in
    let se = sample_stddev xs /. sqrt nf in
    finish ~alternative ~df:(nf -. 1.0) ~diff:(mean xs -. mu) ~se

  let two_sample ?(alternative = TwoSided) ?(shift = 0.0)
      ?(equal_variance = false) xs ys =
    let n1 = Array.length xs and n2 = Array.length ys in
    if n1 < 2 || n2 < 2 then
      invalid_arg "Stats.Test.two_sample: need at least 2 points per sample";
    let nf1 = float_of_int n1 and nf2 = float_of_int n2 in
    let v1 = sample_variance xs and v2 = sample_variance ys in
    let diff = mean xs -. mean ys -. shift in
    if equal_variance then
      (* Student: pooled variance, df = n1 + n2 - 2 *)
      let df = nf1 +. nf2 -. 2.0 in
      let pooled = (((nf1 -. 1.0) *. v1) +. ((nf2 -. 1.0) *. v2)) /. df in
      let se = sqrt (pooled *. ((1.0 /. nf1) +. (1.0 /. nf2))) in
      finish ~alternative ~df ~diff ~se
    else
      (* Welch: unpooled variance, Welch-Satterthwaite df *)
      let q1 = v1 /. nf1 and q2 = v2 /. nf2 in
      let se = sqrt (q1 +. q2) in
      let df =
        if se > 0.0 then
          ((q1 +. q2) *. (q1 +. q2))
          /. ((q1 *. q1 /. (nf1 -. 1.0)) +. (q2 *. q2 /. (nf2 -. 1.0)))
        else nf1 +. nf2 -. 2.0
      in
      finish ~alternative ~df ~diff ~se

  let paired ?(alternative = TwoSided) ?(shift = 0.0) xs ys =
    let n = Array.length xs in
    if n <> Array.length ys then
      invalid_arg "Stats.Test.paired: length mismatch";
    one_sample ~alternative ~mean:shift
      (Array.init n (fun i -> xs.(i) -. ys.(i)))

  let t_quantile ~df p =
    if not (df > 0.0) then
      invalid_arg "Stats.Test.t_quantile: df must be positive";
    if not (p > 0.0 && p < 1.0) then
      invalid_arg "Stats.Test.t_quantile: p must be in (0, 1)";
    if p = 0.5 then 0.0
    else
      (* bisection on the CDF: ~1e-13 after 60 halvings of [0, 1e6],
         monotone and branch-free enough to be bit-deterministic *)
      let target = max p (1.0 -. p) in
      let lo = ref 0.0 and hi = ref 1e6 in
      for _ = 1 to 200 do
        let mid = 0.5 *. (!lo +. !hi) in
        if student_cdf ~df mid < target then lo := mid else hi := mid
      done;
      let q = 0.5 *. (!lo +. !hi) in
      if p < 0.5 then -.q else q

  let mean_ci ?(confidence = 0.95) xs =
    if Array.length xs < 2 then
      invalid_arg "Stats.Test.mean_ci: need at least 2 points";
    if not (confidence > 0.0 && confidence < 1.0) then
      invalid_arg "Stats.Test.mean_ci: confidence must be in (0, 1)";
    let n = float_of_int (Array.length xs) in
    let m = mean xs in
    let se = sample_stddev xs /. sqrt n in
    let t = t_quantile ~df:(n -. 1.0) (1.0 -. ((1.0 -. confidence) /. 2.0)) in
    (m -. (t *. se), m +. (t *. se))

  let bootstrap_mean_ci ?(confidence = 0.95) ?(replicates = 1000) ~seed xs =
    check_nonempty "Stats.Test.bootstrap_mean_ci" xs;
    if replicates < 1 then
      invalid_arg "Stats.Test.bootstrap_mean_ci: replicates must be >= 1";
    if not (confidence > 0.0 && confidence < 1.0) then
      invalid_arg "Stats.Test.bootstrap_mean_ci: confidence must be in (0, 1)";
    let n = Array.length xs in
    let rng = Rng.create seed in
    let means =
      Array.init replicates (fun _ ->
          let acc = ref 0.0 in
          for _ = 1 to n do
            acc := !acc +. xs.(Rng.int rng n)
          done;
          !acc /. float_of_int n)
    in
    let tail = 100.0 *. ((1.0 -. confidence) /. 2.0) in
    (percentile means tail, percentile means (100.0 -. tail))
end
