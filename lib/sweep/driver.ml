(* The statistical sweep driver: fan an experiment's probe across many
   seeds on [Pool.map], aggregate the named metrics, and judge the
   hypothesis tests into a sweep report.

   Determinism contract (same as the chaos sweep): every run's seed
   derives only from (sweep seed, run index), the probe items are
   fanned out with order-preserving [Pool.map], and the report carries
   no wall-clock or domain-count field — so the rendered summary and
   the JSON artifact are byte-identical for any [--domains] and across
   repeated runs at the same seed. *)

module Pool = Tussle_prelude.Pool
module Stats = Tussle_prelude.Stats
module Sweep_report = Tussle_obs.Sweep_report
module Experiment = Tussle_experiments.Experiment
module Invariant = Tussle_chaos.Invariant

type error = { exp_id : string; message : string }

(* Same prime-stride derivation the chaos layer uses: distinct strides
   keep run seeds disjoint from chaos plan seeds at the same master. *)
let run_seed ~seed index = seed + (7919 * (index + 1))

(* One probe replicate, through the real fault-isolation/watchdog
   machinery: the probe is wrapped in a throwaway [Experiment.t] so
   [Experiment.run] gives it the same uncaught-exception capture and
   optional timeout the battery gives a full experiment.  The [result]
   ref is written before the watchdog's atomic slot is set and read
   after it is observed, so the value is safely published even when
   the probe ran in a spawned domain. *)
let run_probe ?timeout_s (e : Experiment.t) probe ~seed index =
  let result = ref [] in
  let shim =
    {
      Experiment.id = e.Experiment.id;
      title = e.Experiment.title;
      paper_claim = "";
      run =
        (fun () ->
          result := probe ~seed:(run_seed ~seed index);
          ("", true));
      sweep = None;
    }
  in
  let o = Experiment.run ?timeout_s shim in
  match o.Experiment.status with
  | Experiment.Held -> Ok !result
  | Experiment.Violated -> Error "probe shim violated (cannot happen)"
  | Experiment.Failed msg ->
    Error (Printf.sprintf "run %d (seed %d): %s" index (run_seed ~seed index) msg)

(* Collate one experiment's per-run metric lists into named sample
   arrays, insisting every run produced the same metric names in the
   same order (anything else breaks pairing silently). *)
let collate exp_id rows =
  match rows with
  | [] -> Error { exp_id; message = "no runs" }
  | first :: _ ->
    let names = List.map fst first in
    let mismatch =
      List.find_index (fun row -> List.map fst row <> names) rows
    in
    (match mismatch with
    | Some i ->
      Error
        {
          exp_id;
          message =
            Printf.sprintf
              "run %d returned metric names [%s], run 0 returned [%s]" i
              (String.concat "; " (List.map fst (List.nth rows i)))
              (String.concat "; " names);
        }
    | None ->
      let samples =
        List.map
          (fun name ->
            ( name,
              Array.of_list (List.map (fun row -> List.assoc name row) rows) ))
          names
      in
      Ok samples)

let metric_of_samples (name, samples) =
  let mean = Stats.mean samples in
  let stddev = Stats.sample_stddev samples in
  let ci_lo, ci_hi = Stats.Test.mean_ci samples in
  { Sweep_report.name; samples; mean; stddev; ci_lo; ci_hi }

let judge_experiment ~alpha (e : Experiment.t) judge samples =
  match
    judge (fun name ->
        match List.assoc_opt name samples with
        | Some xs -> xs
        | None -> raise Not_found)
  with
  | verdicts ->
    Ok
      (List.map
         (fun (v : Experiment.verdict) ->
           {
             Sweep_report.claim = v.Experiment.claim;
             test = v.Experiment.test;
             statistic = v.Experiment.result.Stats.Test.statistic;
             df = v.Experiment.result.Stats.Test.df;
             pvalue = v.Experiment.result.Stats.Test.pvalue;
             alpha;
             pass = v.Experiment.result.Stats.Test.pvalue < alpha;
           })
         verdicts)
  | exception Not_found ->
    Error
      {
        exp_id = e.Experiment.id;
        message = "judge asked for a metric the probe never produced";
      }
  | exception exn ->
    Error
      {
        exp_id = e.Experiment.id;
        message = Printf.sprintf "judge raised: %s" (Printexc.to_string exn);
      }

let run_sweep ?domains ?timeout_s ?(label = "sweep") ~seed ~runs ~alpha
    experiments =
  if runs < 2 then invalid_arg "Driver.run_sweep: runs must be >= 2";
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Driver.run_sweep: alpha must be in (0, 1)";
  let sweepable =
    List.filter_map
      (fun (e : Experiment.t) ->
        Option.map (fun s -> (e, s)) e.Experiment.sweep)
      experiments
  in
  (* one flat fan-out across every (experiment, run) pair, so a slow
     experiment's runs interleave with a fast one's instead of forming
     a barrier between experiments *)
  let items =
    List.concat_map
      (fun (e, (s : Experiment.sweep)) ->
        List.init runs (fun i -> (e, s, i)))
      sweepable
  in
  let results =
    Pool.map ?domains
      (fun (e, (s : Experiment.sweep), i) ->
        run_probe ?timeout_s e s.Experiment.probe ~seed i)
      items
  in
  (* regroup in experiment order; Pool.map preserved item order *)
  let rec take n = function
    | rest when n = 0 -> ([], rest)
    | x :: rest ->
      let xs, rest = take (n - 1) rest in
      (x :: xs, rest)
    | [] -> invalid_arg "Driver.run_sweep: short result list"
  in
  let exps, errors, _ =
    List.fold_left
      (fun (exps, errors, remaining) (e, (s : Experiment.sweep)) ->
        let rows, remaining = take runs remaining in
        let probe_errors =
          List.filter_map
            (function
              | Error m -> Some { exp_id = e.Experiment.id; message = m }
              | Ok _ -> None)
            rows
        in
        if probe_errors <> [] then (exps, errors @ probe_errors, remaining)
        else
          let rows = List.filter_map Result.to_option rows in
          match collate e.Experiment.id rows with
          | Error err -> (exps, errors @ [ err ], remaining)
          | Ok samples -> (
            match judge_experiment ~alpha e s.Experiment.judge samples with
            | Error err -> (exps, errors @ [ err ], remaining)
            | Ok verdicts ->
              let exp =
                {
                  Sweep_report.id = e.Experiment.id;
                  title = e.Experiment.title;
                  runs;
                  metrics = List.map metric_of_samples samples;
                  verdicts;
                }
              in
              (exps @ [ exp ], errors, remaining)))
      ([], [], results) sweepable
  in
  let report = Sweep_report.make ~label ~sweep_seed:seed ~runs exps in
  (report, errors)

let error_string e = Printf.sprintf "%s: %s" e.exp_id e.message

(* A sweep is trustworthy only if its own artifact passes the chaos
   layer's report invariants — checked here so every caller (CLI,
   bench, tests) gets the same gate. *)
let check_report = Invariant.check_report
