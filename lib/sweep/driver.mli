(** The statistical sweep driver behind [tussle sweep].

    Fans each experiment's {!Tussle_experiments.Experiment.sweep}
    probe across [runs] seeds on order-preserving
    {!Tussle_prelude.Pool.map}, collates the named metrics into
    per-seed sample arrays, computes mean / sample stddev / 95%
    Student-t interval per metric, and judges the experiment's
    hypothesis tests against [alpha] into a
    {!Tussle_obs.Sweep_report.t}.

    Determinism contract (same as the chaos sweep): run seeds derive
    only from (sweep seed, run index) — [seed + 7919 * (index + 1)] —
    and the report carries no wall-clock or domain-count field, so
    both the rendered summary and the JSON artifact are byte-identical
    for any [--domains] count and across repeated runs at the same
    seed. *)

type error = { exp_id : string; message : string }
(** A per-experiment sweep failure: a probe run raised (or timed out
    under the watchdog), runs disagreed on metric names, or the judge
    asked for a metric the probe never produced.  Failed experiments
    are omitted from the report; the sweep's other experiments are
    unaffected (the battery's fault-isolation discipline). *)

val run_seed : seed:int -> int -> int
(** The per-run seed derivation, exposed so tests can pin it. *)

val run_sweep :
  ?domains:int ->
  ?timeout_s:float ->
  ?label:string ->
  seed:int ->
  runs:int ->
  alpha:float ->
  Tussle_experiments.Experiment.t list ->
  Tussle_obs.Sweep_report.t * error list
(** Sweep every experiment in the list that exposes a sweep surface
    (others are silently skipped — pass {!Tussle_experiments.Registry.sweepables}
    for "all of them").  Each probe replicate runs through
    {!Tussle_experiments.Experiment.run} — uncaught exceptions become
    {!error}s instead of killing the sweep, and [?timeout_s] arms the
    per-run watchdog.  Raises [Invalid_argument] if [runs < 2] or
    [alpha] is outside (0, 1). *)

val check_report :
  Tussle_obs.Sweep_report.t -> Tussle_chaos.Invariant.violation list
(** The chaos layer's report invariants
    ({!Tussle_chaos.Invariant.check_report}), re-exported so every
    sweep caller applies the same self-consistency gate before
    trusting or writing the artifact. *)

val error_string : error -> string
