type event_id = int

type event = { id : event_id; action : t -> unit }

and t = {
  mutable clock : float;
  queue : event Tussle_prelude.Pqueue.t;
  cancelled : (event_id, unit) Hashtbl.t;
  mutable next_id : event_id;
  mutable executed : int;
}

let create () =
  {
    clock = 0.0;
    queue = Tussle_prelude.Pqueue.create ();
    cancelled = Hashtbl.create 64;
    next_id = 0;
    executed = 0;
  }

let now t = t.clock

let schedule t at action =
  if not (Float.is_finite at) then invalid_arg "Engine.schedule: non-finite time";
  if at < t.clock then invalid_arg "Engine.schedule: time in the past";
  let id = t.next_id in
  t.next_id <- id + 1;
  Tussle_prelude.Pqueue.push t.queue at { id; action };
  id

let schedule_after t delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t (t.clock +. delay) action

let cancel t id = Hashtbl.replace t.cancelled id ()

let cancelled_backlog t = Hashtbl.length t.cancelled

let pending t = Tussle_prelude.Pqueue.length t.queue

let fire t at ev =
  t.clock <- at;
  if Hashtbl.mem t.cancelled ev.id then Hashtbl.remove t.cancelled ev.id
  else begin
    t.executed <- t.executed + 1;
    ev.action t
  end

let step t =
  match Tussle_prelude.Pqueue.pop t.queue with
  | None ->
    Hashtbl.reset t.cancelled;
    false
  | Some (at, ev) ->
    fire t at ev;
    true

let run ?until t =
  let horizon = Option.value ~default:infinity until in
  let rec loop () =
    match Tussle_prelude.Pqueue.peek t.queue with
    | None -> ()
    | Some (at, _) when at > horizon -> ()
    | Some _ ->
      ignore (step t);
      loop ()
  in
  loop ();
  (* Advance to the horizon whether the queue drained before it or the
     next event lies beyond it, so [now] is consistent after [run
     ~until] (never moving the clock backwards). *)
  if Float.is_finite horizon && horizon > t.clock then t.clock <- horizon;
  (* With no events pending, every outstanding cancellation is stale:
     reap the table so long-lived engines do not accumulate ids. *)
  if Tussle_prelude.Pqueue.is_empty t.queue then Hashtbl.reset t.cancelled

let events_executed t = t.executed
