module Metrics = Tussle_obs.Metrics
module Trace = Tussle_obs.Trace
module Clock = Tussle_obs.Clock

type event_id = int

(* No per-event record: the queue payload is the bare action closure,
   and the queue's own insertion seq (which it assigns 0, 1, 2, ... per
   push) doubles as the event id.  Since the engine is the only pusher,
   the ids are exactly the old [next_id] sequence, and a schedule
   allocates nothing beyond the closure the caller already built. *)
type t = {
  mutable clock : float;
  queue : (t -> unit) Tussle_prelude.Pqueue.t;
  cancelled : (event_id, unit) Hashtbl.t;
  mutable executed : int;
  mutable queue_hw : int;
  mutable reaped : int;
}

let create () =
  {
    clock = 0.0;
    queue = Tussle_prelude.Pqueue.create ();
    cancelled = Hashtbl.create 64;
    executed = 0;
    queue_hw = 0;
    reaped = 0;
  }

let now t = t.clock

let schedule t at action =
  if not (Float.is_finite at) then invalid_arg "Engine.schedule: non-finite time";
  if at < t.clock then invalid_arg "Engine.schedule: time in the past";
  let id = Tussle_prelude.Pqueue.push_tagged t.queue at action in
  let depth = Tussle_prelude.Pqueue.length t.queue in
  if depth > t.queue_hw then t.queue_hw <- depth;
  id

let schedule_after t delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t (t.clock +. delay) action

let cancel t id = Hashtbl.replace t.cancelled id ()

let cancelled_backlog t = Hashtbl.length t.cancelled

let pending t = Tussle_prelude.Pqueue.length t.queue

let reap_stale t =
  t.reaped <- t.reaped + Hashtbl.length t.cancelled;
  Hashtbl.reset t.cancelled

(* Pops via min_key/min_seq/pop_min: no option or tuple cell per event. *)
let fire t =
  let at = Tussle_prelude.Pqueue.min_key t.queue in
  let id = Tussle_prelude.Pqueue.min_seq t.queue in
  let action = Tussle_prelude.Pqueue.pop_min t.queue in
  t.clock <- at;
  if Hashtbl.mem t.cancelled id then begin
    Hashtbl.remove t.cancelled id;
    t.reaped <- t.reaped + 1
  end
  else begin
    t.executed <- t.executed + 1;
    action t
  end

let step t =
  if Tussle_prelude.Pqueue.is_empty t.queue then begin
    reap_stale t;
    false
  end
  else begin
    fire t;
    true
  end

(* Telemetry handles; created once at module initialization so the
   per-run emission path is just array writes in this domain's sink. *)
let m_runs = Metrics.counter "engine.runs"
let m_events = Metrics.counter "engine.events_executed"
let m_reaped = Metrics.counter "engine.cancellations_reaped"
let m_queue_hw = Metrics.gauge "engine.queue_depth_high_water"
let m_run_wall = Metrics.histogram "engine.run_wall_s"
let m_sim_per_wall = Metrics.histogram "engine.sim_per_wall"

let run_loop ?until t =
  let horizon = Option.value ~default:infinity until in
  while
    (not (Tussle_prelude.Pqueue.is_empty t.queue))
    && Tussle_prelude.Pqueue.min_key t.queue <= horizon
  do
    fire t
  done;
  (* Advance to the horizon whether the queue drained before it or the
     next event lies beyond it, so [now] is consistent after [run
     ~until] (never moving the clock backwards). *)
  if Float.is_finite horizon && horizon > t.clock then t.clock <- horizon;
  (* With no events pending, every outstanding cancellation is stale:
     reap the table so long-lived engines do not accumulate ids. *)
  if Tussle_prelude.Pqueue.is_empty t.queue then reap_stale t

let run ?until t =
  (* One flag check per run, nothing per event: the disabled path is
     the pre-telemetry loop verbatim. *)
  let metrics_on = Metrics.enabled () in
  let tracing_on = Trace.enabled () in
  if not (metrics_on || tracing_on) then run_loop ?until t
  else begin
    let sp = Trace.begin_span ~cat:"engine" "engine.run" in
    let wall0 = Clock.now_s () in
    let executed0 = t.executed in
    let reaped0 = t.reaped in
    let sim0 = t.clock in
    Fun.protect
      ~finally:(fun () ->
        Trace.end_span sp;
        if metrics_on then begin
          let wall = Clock.now_s () -. wall0 in
          Metrics.incr m_runs;
          Metrics.add m_events (t.executed - executed0);
          Metrics.add m_reaped (t.reaped - reaped0);
          Metrics.set m_queue_hw (float_of_int t.queue_hw);
          Metrics.observe m_run_wall wall;
          if wall > 0.0 then
            Metrics.observe m_sim_per_wall ((t.clock -. sim0) /. wall)
        end)
      (fun () -> run_loop ?until t)
  end

let events_executed t = t.executed

let queue_depth_high_water t = t.queue_hw

let cancellations_reaped t = t.reaped
