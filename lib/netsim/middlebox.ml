type action = Forward | Drop | Degrade | Tap

type t = {
  name : string;
  reveals_presence : bool;
  policy : Packet.t -> action;
  mutable inspected : int;
  mutable dropped : int;
  mutable tapped : int;
  mutable degraded : int;
}

let name t = t.name

let action_to_string = function
  | Forward -> "forward"
  | Drop -> "drop"
  | Degrade -> "degrade"
  | Tap -> "tap"

let reveals_presence t = t.reveals_presence

let decide t p =
  t.inspected <- t.inspected + 1;
  let a = t.policy p in
  (match a with
  | Drop -> t.dropped <- t.dropped + 1
  | Tap -> t.tapped <- t.tapped + 1
  | Degrade -> t.degraded <- t.degraded + 1
  | Forward -> ());
  a

let inspected t = t.inspected

let dropped t = t.dropped

let tapped t = t.tapped

let degraded t = t.degraded

let make ?(reveals_presence = true) ~name policy =
  { name; reveals_presence; policy; inspected = 0; dropped = 0; tapped = 0;
    degraded = 0 }

let port_filter ?reveals_presence ~blocked () =
  let policy p =
    if List.mem (Packet.visible_port p) blocked then Drop else Forward
  in
  make ?reveals_presence ~name:"port-filter" policy

let app_filter ?reveals_presence ~blocked () =
  let policy p =
    match Packet.visible_app p with
    | Some app when List.mem app blocked -> Drop
    | Some _ | None -> Forward
  in
  make ?reveals_presence ~name:"app-filter" policy

let trust_firewall ?reveals_presence ~admits () =
  let policy (p : Packet.t) =
    if admits ~src:p.Packet.src ~dst:p.Packet.dst then Forward else Drop
  in
  make ?reveals_presence ~name:"trust-firewall" policy

let wiretap () = make ~reveals_presence:false ~name:"wiretap" (fun _ -> Tap)

let qos_stripper ?reveals_presence ~honor () =
  let policy (p : Packet.t) =
    match p.Packet.qos with
    | Packet.Best_effort -> Forward
    | Packet.Assured | Packet.Premium -> if honor p then Forward else Degrade
  in
  make ?reveals_presence ~name:"qos-stripper" policy
