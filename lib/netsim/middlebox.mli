(** Middleboxes: in-network control points where tussle is exercised.

    A middlebox inspects packets transiting its node and decides their
    fate.  Crucially for the paper's argument (§VI-A), a middlebox sees
    only what the packet *exposes*: an encrypted or tunneled packet hides
    its application, so application filters silently fail against it —
    "peeking is irresistible [...] the ultimate defense is end-to-end
    encryption."

    The [reveals_presence] flag models the paper's visibility principle:
    a courteous device announces that it imposed a limitation (so faults
    can be isolated and tussles can be managed); a covert one does not. *)

type action =
  | Forward  (** pass unchanged *)
  | Drop  (** discard (filtering, firewalling) *)
  | Degrade  (** strip QoS to best-effort (closed QoS deployment) *)
  | Tap  (** copy to an observer, then forward (wiretap) *)

type t

val name : t -> string

val action_to_string : action -> string
(** Stable labels ["forward"] / ["drop"] / ["degrade"] / ["tap"], used
    by the flight recorder's middlebox-transform events. *)

val reveals_presence : t -> bool

val decide : t -> Packet.t -> action
(** Apply the policy and update counters. *)

val inspected : t -> int

val dropped : t -> int

val tapped : t -> int

val degraded : t -> int

val make :
  ?reveals_presence:bool -> name:string -> (Packet.t -> action) -> t
(** General middlebox from a decision function (default: reveals
    presence). *)

val port_filter : ?reveals_presence:bool -> blocked:int list -> unit -> t
(** Drop packets whose {e visible} port is blocked.  Tunneling defeats
    it. *)

val app_filter : ?reveals_presence:bool -> blocked:Packet.app list -> unit -> t
(** Drop packets whose {e visible} application is blocked.  Encryption
    and tunneling defeat it. *)

val trust_firewall :
  ?reveals_presence:bool -> admits:(src:int -> dst:int -> bool) -> unit -> t
(** The paper's "trust-aware firewall": admits or refuses based on {e who
    is communicating} rather than what protocol is visible, so it is
    immune to port games and does not collateral-damage new
    applications. *)

val wiretap : unit -> t
(** Taps every packet it can read; encrypted payloads are still tapped
    but yield no application information (see {!Packet.visible_app}). *)

val qos_stripper : ?reveals_presence:bool -> honor:(Packet.t -> bool) -> unit -> t
(** Degrades QoS on packets the operator chooses not to honor — the
    closed-QoS behaviour of §VII ("only turn them on for applications
    that they sell"). *)
