module Graph = Tussle_prelude.Graph
module Metrics = Tussle_obs.Metrics
module Flight = Tussle_obs.Flight

type drop_reason =
  | No_route
  | Queue_full of int * int
  | Filtered of string * int
  | Ttl_exceeded
  | Link_down of int * int
  | Fault_loss of int * int
  | Corrupted of int * int
  | Gray_loss of int * int
  | Blackholed of int

type outcome =
  | Delivered of { latency : float; degraded : bool; tapped : bool }
  | Lost of drop_reason

type forwarding = node:int -> target:int -> Packet.t -> int option

type transit = {
  mutable waypoints : int list;
  mutable degraded : bool;
  mutable tapped : bool;
}

type t = {
  links : Link.t Graph.t;
  (* mutable so a control plane can re-converge mid-run (self-healing
     routing swaps in fresh tables while packets are in flight) *)
  mutable forwarding : forwarding;
  middleboxes : (int, Middlebox.t list) Hashtbl.t;
  (* Byzantine nodes: answer hellos and accept traffic addressed to
     themselves, silently discard everything they'd forward for others *)
  blackholes : (int, unit) Hashtbl.t;
  transits : (int, transit) Hashtbl.t;
  mutable injected : int;
  mutable outcomes : (Packet.t * outcome) list; (* reversed *)
  mutable observers : (Packet.t -> outcome -> unit) list; (* reversed *)
  ttl : int;
}

let create ?(ttl = 64) links forwarding =
  if ttl <= 0 then invalid_arg "Net.create: non-positive ttl";
  {
    links;
    forwarding;
    middleboxes = Hashtbl.create 16;
    blackholes = Hashtbl.create 4;
    transits = Hashtbl.create 64;
    injected = 0;
    outcomes = [];
    observers = [];
    ttl;
  }

let set_forwarding t forwarding = t.forwarding <- forwarding

let add_middlebox t node mb =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.middleboxes node) in
  Hashtbl.replace t.middleboxes node (cur @ [ mb ])

let middleboxes_at t node =
  Option.value ~default:[] (Hashtbl.find_opt t.middleboxes node)

let set_blackhole t node on =
  if on then Hashtbl.replace t.blackholes node ()
  else Hashtbl.remove t.blackholes node

let is_blackhole t node = Hashtbl.mem t.blackholes node

(* Per-reason drop attribution (handles interned once; each incr is an
   atomic load and a branch while telemetry is disabled). *)
let m_drop_no_route = Metrics.counter "net.drops.no_route"
let m_drop_queue_full = Metrics.counter "net.drops.queue_full"
let m_drop_filtered = Metrics.counter "net.drops.filtered"
let m_drop_ttl = Metrics.counter "net.drops.ttl_exceeded"
let m_drop_link_down = Metrics.counter "net.drops.link_down"
let m_drop_fault_loss = Metrics.counter "net.drops.fault_loss"
let m_drop_corrupted = Metrics.counter "net.drops.corrupted"
let m_drop_gray_loss = Metrics.counter "net.drops.gray_loss"
let m_drop_blackholed = Metrics.counter "net.drops.blackholed"
let m_delivered = Metrics.counter "net.delivered"

let drop_reason_label = function
  | No_route -> "no-route"
  | Queue_full _ -> "queue-full"
  | Filtered (name, _) -> "filtered:" ^ name
  | Ttl_exceeded -> "ttl-exceeded"
  | Link_down _ -> "link-down"
  | Fault_loss _ -> "fault-loss"
  | Corrupted _ -> "corrupted"
  | Gray_loss _ -> "gray-loss"
  | Blackholed _ -> "blackholed"

let count_outcome = function
  | Delivered _ -> Metrics.incr m_delivered
  | Lost No_route -> Metrics.incr m_drop_no_route
  | Lost (Queue_full _) -> Metrics.incr m_drop_queue_full
  | Lost (Filtered _) -> Metrics.incr m_drop_filtered
  | Lost Ttl_exceeded -> Metrics.incr m_drop_ttl
  | Lost (Link_down _) -> Metrics.incr m_drop_link_down
  | Lost (Fault_loss _) -> Metrics.incr m_drop_fault_loss
  | Lost (Corrupted _) -> Metrics.incr m_drop_corrupted
  | Lost (Gray_loss _) -> Metrics.incr m_drop_gray_loss
  | Lost (Blackholed _) -> Metrics.incr m_drop_blackholed

(* Flight-recorder terminus: one event per completed transit, located
   at the node (or link) where the packet's fate was decided. *)
let record_finish ~now ~at p outcome =
  match outcome with
  | Delivered { latency; degraded; tapped } ->
    Flight.emit ~sim_t:now ~flow:p.Packet.id ~node:at ~peer:(-1)
      ~detail:
        (match (degraded, tapped) with
        | true, true -> "degraded,tapped"
        | true, false -> "degraded"
        | false, true -> "tapped"
        | false, false -> "")
      ~value:latency "deliver"
  | Lost reason ->
    let node, peer =
      match reason with
      | No_route | Ttl_exceeded -> (at, -1)
      | Queue_full (u, v) | Link_down (u, v) | Fault_loss (u, v)
      | Corrupted (u, v) | Gray_loss (u, v) ->
        (u, v)
      | Filtered (_, n) | Blackholed n -> (n, -1)
    in
    Flight.emit ~sim_t:now ~flow:p.Packet.id ~node ~peer
      ~detail:(drop_reason_label reason) ~value:0.0 "drop"

let finish t ~now ~at p outcome =
  Hashtbl.remove t.transits p.Packet.id;
  count_outcome outcome;
  if Flight.enabled () then record_finish ~now ~at p outcome;
  t.outcomes <- (p, outcome) :: t.outcomes;
  List.iter (fun observe -> observe p outcome) (List.rev t.observers)

let on_complete t observe = t.observers <- observe :: t.observers

(* Run the node's middleboxes; [Some reason] means the packet died here.
   Transforms (degrade, tap, drop) land in the flight recorder; the
   drop's own terminus event carries the filtered reason, so only
   non-fatal transforms are emitted here. *)
let run_middleboxes t ~now node p state =
  let rec apply = function
    | [] -> None
    | mb :: rest -> begin
      match Middlebox.decide mb p with
      | Middlebox.Forward -> apply rest
      | Middlebox.Drop -> Some (Filtered (Middlebox.name mb, node))
      | Middlebox.Degrade ->
        state.degraded <- true;
        if Flight.enabled () then
          Flight.emit ~sim_t:now ~flow:p.Packet.id ~node ~peer:(-1)
            ~detail:(Middlebox.name mb) ~value:0.0 "mb-degrade";
        apply rest
      | Middlebox.Tap ->
        state.tapped <- true;
        if Flight.enabled () then
          Flight.emit ~sim_t:now ~flow:p.Packet.id ~node ~peer:(-1)
            ~detail:(Middlebox.name mb) ~value:0.0 "mb-tap";
        apply rest
    end
  in
  apply (middleboxes_at t node)

let rec arrive t engine p node =
  Packet.record_hop p node;
  let now = Engine.now engine in
  let state = Hashtbl.find t.transits p.Packet.id in
  match run_middleboxes t ~now node p state with
  | Some reason -> finish t ~now ~at:node p (Lost reason)
  | None ->
    (* a Byzantine node silently discards transit traffic — anything
       it would forward for others — while traffic it originates or
       terminates (hellos, packets addressed to it) flows normally *)
    if
      Hashtbl.mem t.blackholes node
      && node <> p.Packet.src && node <> p.Packet.dst
    then finish t ~now ~at:node p (Lost (Blackholed node))
    else begin
    (* consume a reached waypoint *)
    (match state.waypoints with
    | w :: rest when w = node -> state.waypoints <- rest
    | _ -> ());
    if node = p.Packet.dst && state.waypoints = [] then
      let latency = now -. p.Packet.created in
      finish t ~now ~at:node p
        (Delivered { latency; degraded = state.degraded; tapped = state.tapped })
    else if List.length p.Packet.hops >= t.ttl then
      finish t ~now ~at:node p (Lost Ttl_exceeded)
    else
      let target =
        match state.waypoints with w :: _ -> w | [] -> p.Packet.dst
      in
      match t.forwarding ~node ~target p with
      | None -> finish t ~now ~at:node p (Lost No_route)
      | Some next -> begin
        match Graph.find_edge t.links node next with
        | None -> finish t ~now ~at:node p (Lost No_route)
        | Some link -> begin
          match Link.try_enqueue link ~now p.Packet.size_bytes with
          | `Dropped -> finish t ~now ~at:node p (Lost (Queue_full (node, next)))
          | `Faulted Link.Down ->
            finish t ~now ~at:node p (Lost (Link_down (node, next)))
          | `Faulted Link.Loss ->
            finish t ~now ~at:node p (Lost (Fault_loss (node, next)))
          | `Faulted Link.Corrupt ->
            finish t ~now ~at:node p (Lost (Corrupted (node, next)))
          | `Faulted Link.Gray ->
            finish t ~now ~at:node p (Lost (Gray_loss (node, next)))
          | `Sent arrival_time ->
            if Flight.enabled () then
              Flight.emit ~sim_t:now ~flow:p.Packet.id ~node ~peer:next
                ~detail:"" ~value:(float_of_int (Link.queue_length link))
                "hop";
            ignore
              (Engine.schedule engine arrival_time (fun engine ->
                   arrive t engine p next))
        end
      end
    end

let inject t engine p =
  if Hashtbl.mem t.transits p.Packet.id then
    invalid_arg "Net.inject: duplicate packet id in flight";
  t.injected <- t.injected + 1;
  Hashtbl.replace t.transits p.Packet.id
    { waypoints = p.Packet.source_route; degraded = false; tapped = false };
  if Flight.enabled () then
    Flight.emit ~sim_t:(Engine.now engine) ~flow:p.Packet.id
      ~node:p.Packet.src ~peer:p.Packet.dst
      ~detail:(Packet.app_to_string p.Packet.app)
      ~value:(float_of_int p.Packet.size_bytes) "inject";
  ignore
    (Engine.schedule engine (Engine.now engine) (fun engine ->
         arrive t engine p p.Packet.src))

let outcomes t = List.rev t.outcomes

let injected_count t = t.injected

let in_flight t = Hashtbl.length t.transits

let delivered_count t =
  List.length
    (List.filter (fun (_, o) -> match o with Delivered _ -> true | Lost _ -> false)
       t.outcomes)

let lost_count t =
  List.length
    (List.filter (fun (_, o) -> match o with Lost _ -> true | Delivered _ -> false)
       t.outcomes)

let delivery_ratio t =
  let n = List.length t.outcomes in
  if n = 0 then 0.0 else float_of_int (delivered_count t) /. float_of_int n

let mean_latency t =
  let latencies =
    List.filter_map
      (fun (_, o) ->
        match o with Delivered d -> Some d.latency | Lost _ -> None)
      t.outcomes
  in
  match latencies with
  | [] -> None
  | _ -> Some (Tussle_prelude.Stats.mean (Array.of_list latencies))

let losses_by_reason t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, o) ->
      match o with
      | Delivered _ -> ()
      | Lost r ->
        let label = drop_reason_label r in
        let cur = Option.value ~default:0 (Hashtbl.find_opt tbl label) in
        Hashtbl.replace tbl label (cur + 1))
    t.outcomes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let clear_outcomes t = t.outcomes <- []

let links t = t.links
