(** Discrete-event simulation engine.

    Events are closures scheduled at absolute simulation times.  The
    engine guarantees deterministic execution order: events fire in
    non-decreasing time, FIFO among events scheduled for the same time.
    Scheduling in the past raises [Invalid_argument].

    An event may schedule further events and may cancel pending ones by
    id.  [run] drives the simulation to quiescence or to a time horizon. *)

type t

type event_id
(** Handle for cancellation. *)

val create : unit -> t
(** Fresh engine at time [0.0]. *)

val now : t -> float
(** Current simulation time. *)

val schedule : t -> float -> (t -> unit) -> event_id
(** [schedule t at f] fires [f] at absolute time [at].  Raises
    [Invalid_argument] if [at < now t] or [at] is not finite. *)

val schedule_after : t -> float -> (t -> unit) -> event_id
(** [schedule_after t delay f] is [schedule t (now t +. delay) f].
    Raises [Invalid_argument] on negative [delay]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; cancelling an already-fired or unknown id is a
    no-op.  A cancelled id is remembered until its event pops (and is
    skipped) or until the queue drains — [run] and [step] reap the
    whole cancellation table once no events are pending, so cancelling
    events that never pop cannot leak across simulation runs. *)

val cancelled_backlog : t -> int
(** Number of cancellations not yet reaped (diagnostics: 0 after the
    queue has drained). *)

val pending : t -> int
(** Number of events still queued.  Cancelled events are counted until
    they pop: cancellation marks an id, it does not remove the queue
    entry. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue is empty or the next event lies beyond
    [until].  On return with a finite [until], [now t = until] whether
    the queue drained early or the horizon cut execution short (the
    clock never moves backwards, so a horizon earlier than [now] is a
    no-op).  Without [until], [now] is the last executed event time. *)

val step : t -> bool
(** Execute exactly one event; [false] when the queue was empty. *)

val events_executed : t -> int
(** Count of events fired so far (diagnostics and benchmarks). *)

val queue_depth_high_water : t -> int
(** Largest number of simultaneously queued events seen over the
    engine's lifetime (sampled after every [schedule]; cancelled
    events count until they pop, like {!pending}). *)

val cancellations_reaped : t -> int
(** Total cancellations honoured so far: events skipped at pop time
    plus stale ids cleared when the queue drained.  Monotone, unlike
    {!cancelled_backlog} which counts only the outstanding ones.

    Telemetry: when {!Tussle_obs.Metrics} is enabled, every [run]
    also accumulates [engine.runs], [engine.events_executed],
    [engine.cancellations_reaped], the [engine.queue_depth_high_water]
    gauge and the [engine.run_wall_s] / [engine.sim_per_wall]
    histograms, and opens an ["engine.run"] span when
    {!Tussle_obs.Trace} is enabled.  With telemetry disabled the
    event loop is unchanged. *)
