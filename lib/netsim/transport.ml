module Rng = Tussle_prelude.Rng
module Flight = Tussle_obs.Flight

type behaviour = Compliant | Aggressive

type status = Active | Completed | Abandoned

type t = {
  behaviour : behaviour;
  engine : Engine.t;
  net : Net.t;
  gen : Traffic.t;
  src : int;
  dst : int;
  total : int;
  increase : float;
  ack_delay : float;
  loss_timeout : float;
  rto_backoff : float;
  rto_max : float;
  rto_jitter : float;
  jitter_rng : Rng.t option;
  max_retries : int option;
  mutable cwnd : float;
  mutable next_seq : int; (* next data sequence number to send fresh *)
  mutable outstanding : int; (* seqs sent at least once and not yet acked *)
  (* packet id -> sequence number, for packets currently in the net *)
  seq_of_packet : (int, int) Hashtbl.t;
  acked_seqs : (int, unit) Hashtbl.t;
  (* per-seq retransmissions so far, for backoff and the give-up path *)
  retry_count : (int, int) Hashtbl.t;
  mutable pending_retransmit : int list;
  mutable retransmissions : int;
  mutable losses : int;
  mutable timeouts : int;
  mutable started : float;
  mutable last_progress : float;
  mutable finish_time : float option;
  mutable abandon_time : float option;
  (* flight-recorder flow id: a fresh negative id when the recorder is
     on at [start], [Flight.control_flow] (inert) otherwise *)
  flow : int;
}

let status t =
  if t.finish_time <> None then Completed
  else if t.abandon_time <> None then Abandoned
  else Active

(* the window bounds unacknowledged sequences (TCP's flight size), not
   packets momentarily in the network: otherwise a sender whose packets
   die quickly could pump fresh data without limit *)
let window_room t =
  t.outstanding < int_of_float (Float.max 1.0 t.cwnd)

let retries_of t seq =
  Option.value ~default:0 (Hashtbl.find_opt t.retry_count seq)

let send_seq t seq =
  let p =
    Traffic.next_packet t.gen ~src:t.src ~dst:t.dst
      ~created:(Engine.now t.engine) ()
  in
  Hashtbl.replace t.seq_of_packet p.Packet.id seq;
  if Flight.enabled () then
    Flight.emit ~sim_t:(Engine.now t.engine) ~flow:t.flow ~node:seq
      ~peer:p.Packet.id ~detail:""
      ~value:(float_of_int (retries_of t seq))
      "xfer-send";
  Net.inject t.net t.engine p

let rec fill_window t =
  if status t <> Active then ()
  else
    (* retransmissions first: they do not change the outstanding count *)
    match t.pending_retransmit with
    | seq :: rest ->
      t.pending_retransmit <- rest;
      t.retransmissions <- t.retransmissions + 1;
      send_seq t seq;
      fill_window t
    | [] ->
      if window_room t && t.next_seq < t.total then begin
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        t.outstanding <- t.outstanding + 1;
        send_seq t seq;
        fill_window t
      end

let on_ack t seq =
  if not (Hashtbl.mem t.acked_seqs seq) then begin
    Hashtbl.replace t.acked_seqs seq ();
    t.outstanding <- t.outstanding - 1;
    t.last_progress <- Engine.now t.engine
  end;
  (match t.behaviour with
  | Compliant -> t.cwnd <- t.cwnd +. (t.increase /. Float.max 1.0 t.cwnd)
  | Aggressive -> t.cwnd <- t.cwnd +. (t.increase /. Float.max 1.0 t.cwnd));
  if t.abandon_time <> None then ()
  else if Hashtbl.length t.acked_seqs >= t.total && t.finish_time = None then begin
    t.finish_time <- Some (Engine.now t.engine);
    if Flight.enabled () then
      Flight.emit ~sim_t:(Engine.now t.engine) ~flow:t.flow ~node:t.src
        ~peer:t.dst ~detail:""
        ~value:(Engine.now t.engine -. t.started)
        "xfer-complete"
  end
  else fill_window t

let give_up t =
  t.abandon_time <- Some (Engine.now t.engine);
  if Flight.enabled () then
    Flight.emit ~sim_t:(Engine.now t.engine) ~flow:t.flow ~node:t.src
      ~peer:t.dst ~detail:"max-retries"
      ~value:(float_of_int (Hashtbl.length t.acked_seqs))
      "xfer-abandon";
  (* stop the pump: nothing further is sent, so the engine drains *)
  t.pending_retransmit <- []

let on_loss t seq =
  if status t <> Active then ()
  else begin
    t.losses <- t.losses + 1;
    t.timeouts <- t.timeouts + 1;
    (match t.behaviour with
    | Compliant -> t.cwnd <- Float.max 1.0 (t.cwnd /. 2.0)
    | Aggressive -> ());
    if not (Hashtbl.mem t.acked_seqs seq) then begin
      let tried = retries_of t seq in
      match t.max_retries with
      | Some m when tried >= m -> give_up t
      | Some _ | None ->
        Hashtbl.replace t.retry_count seq (tried + 1);
        t.pending_retransmit <- t.pending_retransmit @ [ seq ];
        fill_window t
    end
    else fill_window t
  end

(* Retransmission timer for this seq's next attempt: base timeout grown
   exponentially with its retries, capped, with optional seeded jitter.
   Defaults (backoff 1, jitter 0) reproduce the historical fixed timer
   exactly and draw nothing from any rng. *)
let rto t seq =
  let tried = retries_of t seq in
  let backed =
    if t.rto_backoff = 1.0 || tried = 0 then t.loss_timeout
    else Float.min t.rto_max (t.loss_timeout *. (t.rto_backoff ** float_of_int tried))
  in
  if t.rto_jitter > 0.0 then
    match t.jitter_rng with
    | Some rng ->
      backed *. (1.0 +. (t.rto_jitter *. Rng.uniform rng (-1.0) 1.0))
    | None -> backed
  else backed

let observer t (p : Packet.t) outcome =
  match Hashtbl.find_opt t.seq_of_packet p.Packet.id with
  | None -> () (* someone else's packet *)
  | Some seq ->
    Hashtbl.remove t.seq_of_packet p.Packet.id;
    (match outcome with
    | Net.Delivered _ ->
      (* the ACK rides back on an uncongested reverse channel *)
      ignore
        (Engine.schedule_after t.engine t.ack_delay (fun _ -> on_ack t seq))
    | Net.Lost reason ->
      (* loss detected only after the retransmission timer *)
      let wait = rto t seq in
      if Flight.enabled () then
        Flight.emit ~sim_t:(Engine.now t.engine) ~flow:t.flow ~node:seq
          ~peer:p.Packet.id
          ~detail:(Net.drop_reason_label reason)
          ~value:wait "xfer-timer";
      ignore
        (Engine.schedule_after t.engine wait (fun _ -> on_loss t seq)))

let start ?(behaviour = Compliant) ?(initial_window = 1.0) ?(increase = 1.0)
    ?(ack_delay = 0.002) ?loss_timeout ?(rto_backoff = 1.0) ?rto_max
    ?(rto_jitter = 0.0) ?jitter_rng ?max_retries engine net gen ~src ~dst
    ~total_packets =
  if total_packets <= 0 then invalid_arg "Transport.start: nothing to send";
  if initial_window < 1.0 then invalid_arg "Transport.start: window < 1";
  if ack_delay <= 0.0 then invalid_arg "Transport.start: non-positive ack delay";
  let loss_timeout = Option.value ~default:(10.0 *. ack_delay) loss_timeout in
  if loss_timeout <= 0.0 then invalid_arg "Transport.start: non-positive timeout";
  if rto_backoff < 1.0 then invalid_arg "Transport.start: backoff < 1";
  let rto_max = Option.value ~default:infinity rto_max in
  if rto_max < loss_timeout then invalid_arg "Transport.start: rto_max < timeout";
  if rto_jitter < 0.0 || rto_jitter >= 1.0 then
    invalid_arg "Transport.start: jitter outside [0,1)";
  if rto_jitter > 0.0 && jitter_rng = None then
    invalid_arg "Transport.start: jitter needs jitter_rng";
  (match max_retries with
  | Some m when m < 1 -> invalid_arg "Transport.start: max_retries < 1"
  | Some _ | None -> ());
  let t =
    {
      behaviour;
      engine;
      net;
      gen;
      src;
      dst;
      total = total_packets;
      increase;
      ack_delay;
      loss_timeout;
      rto_backoff;
      rto_max;
      rto_jitter;
      jitter_rng;
      max_retries;
      cwnd = initial_window;
      next_seq = 0;
      outstanding = 0;
      seq_of_packet = Hashtbl.create 64;
      acked_seqs = Hashtbl.create 64;
      retry_count = Hashtbl.create 16;
      pending_retransmit = [];
      retransmissions = 0;
      losses = 0;
      timeouts = 0;
      started = Engine.now engine;
      last_progress = Engine.now engine;
      finish_time = None;
      abandon_time = None;
      flow =
        (if Flight.enabled () then Flight.new_flow ()
         else Flight.control_flow);
    }
  in
  if Flight.enabled () then
    Flight.emit ~sim_t:(Engine.now engine) ~flow:t.flow ~node:src ~peer:dst
      ~detail:(match behaviour with
        | Compliant -> "compliant"
        | Aggressive -> "aggressive")
      ~value:(float_of_int total_packets)
      "xfer-start";
  Net.on_complete net (observer t);
  fill_window t;
  t

let completed t = t.finish_time <> None

let abandoned t = t.abandon_time <> None

let abandon_time t = t.abandon_time

let acked t = Hashtbl.length t.acked_seqs

let retransmissions t = t.retransmissions

let losses t = t.losses

let timeouts t = t.timeouts

let cwnd t = t.cwnd

let finish_time t = t.finish_time

let last_progress t = t.last_progress

let stalled t ~now ~idle =
  status t = Active && now -. t.last_progress >= idle

let flow t = t.flow

let goodput t ~now =
  let stop =
    match (t.finish_time, t.abandon_time) with
    | Some f, _ -> f
    | None, Some a -> a
    | None, None -> now
  in
  let elapsed = stop -. t.started in
  if elapsed <= 0.0 then 0.0 else float_of_int (acked t) /. elapsed
