(** Point-to-point links: latency, bandwidth and a drop-tail queue.

    The serialization + propagation model is standard:
    departure = arrival + queueing + size/bandwidth, arrival at the far
    end after [latency].  The queue bounds the number of packets in
    flight on the link; arrivals beyond capacity are dropped (drop-tail).

    Links also carry the fault-injection state that {!Tussle_fault}
    drives through timed engine events: an up/down flag, episodic
    loss/corruption probabilities, and an additive latency spike.  All
    of it defaults to "healthy" and costs nothing until set. *)

type t

type fault =
  | Down  (** the link is administratively/physically down *)
  | Loss  (** dropped on the wire by an injected loss episode *)
  | Corrupt  (** transmitted but damaged; discarded on arrival *)
  | Gray
      (** dropped by a gray-failure episode: the data plane eats the
          packet while {!is_up} — what control-plane hellos sample —
          keeps reporting healthy *)

val make :
  ?queue_capacity:int -> latency:float -> bandwidth_bps:float -> unit -> t
(** [make ~latency ~bandwidth_bps ()].  Latency in seconds, bandwidth in
    bits per second, queue capacity in packets (default 64).  Raises
    [Invalid_argument] on non-positive latency/bandwidth. *)

val latency : t -> float

val bandwidth_bps : t -> float

val transmission_delay : t -> int -> float
(** [transmission_delay l bytes] = serialization time of [bytes]. *)

val try_enqueue :
  t -> now:float -> int -> [ `Sent of float | `Dropped | `Faulted of fault ]
(** [try_enqueue l ~now bytes] models a packet offered to the link at
    [now].  [`Sent arrival] gives the time the packet reaches the far
    end (propagation latency plus any injected {!set_extra_latency});
    [`Dropped] means the queue was full; [`Faulted f] means an injected
    fault killed it — [Down]/[Loss] without consuming capacity,
    [Corrupt] after occupying the queue and the wire (the bits were
    transmitted, they just arrive damaged).

    The link keeps internal state (busy-until time and queue
    occupancy), so calls must be made in non-decreasing [now] order;
    calling with a [now] earlier than a previous call raises
    [Invalid_argument] instead of silently corrupting the busy-until
    accounting. *)

val queued : t -> now:float -> int
(** Packets currently occupying the queue at time [now]. *)

val queue_length : t -> int
(** Queue occupancy as of the last offered time, without advancing the
    internal clock.  Read by the flight recorder right after a
    successful [try_enqueue], where it includes the packet just
    enqueued. *)

val utilization : t -> now:float -> float
(** Fraction of elapsed time the link spent transmitting, in [0,1]. *)

val packets_sent : t -> int

val packets_dropped : t -> int
(** Drop-tail (queue-full) drops only; fault drops are counted
    separately by {!fault_drops}. *)

val reset_counters : t -> unit

(** {1 Fault-injection state}

    Set by {!Tussle_fault.Inject} at episode boundaries; harmless to
    drive by hand in tests.  A link starts up, lossless, uncorrupted,
    with no extra latency. *)

val is_up : t -> bool
(** The {e control-plane} view of the link: what hello sampling sees.
    A gray-loss episode leaves this [true] while the data plane drops
    — use {!probe} for data-plane evidence. *)

val set_up : t -> bool -> unit
(** Take the link down (every offered packet becomes [`Faulted Down])
    or bring it back up.  Queue state is preserved across a down
    window; packets already serialized keep their departure times. *)

val set_fault_rng : t -> Tussle_prelude.Rng.t -> unit
(** Attach the seeded stream that loss/corruption draws consume.  Must
    be called before setting a positive probability.  Determinism: the
    engine fires events in a fixed order, so the draw sequence — and
    hence every fault outcome — is a pure function of the seed. *)

val set_loss_prob : t -> float -> unit
(** Per-packet on-the-wire loss probability in [0,1] (raises
    [Invalid_argument] outside, or if positive with no fault rng). *)

val set_corrupt_prob : t -> float -> unit
(** Per-packet corruption probability in [0,1], drawn only for packets
    that were actually transmitted. *)

val set_gray_loss_prob : t -> float -> unit
(** Per-packet gray-loss probability in [0,1]: the data plane drops
    with this probability while {!is_up} stays [true], so hello-based
    detection cannot see the fault.  Same preconditions as
    {!set_loss_prob}. *)

val gray_loss_prob : t -> float

val set_extra_latency : t -> float -> unit
(** Additive propagation latency (a latency-spike episode); >= 0. *)

val extra_latency : t -> float

val fault_drops : t -> int
(** Packets killed by [Down] or [Loss]. *)

val gray_drops : t -> int
(** Packets killed by [Gray] — counted apart from {!fault_drops} so
    the chaos ledger can check covert drops are never silently lost. *)

val corrupted_count : t -> int
(** Packets killed by [Corrupt]. *)

val probe : t -> Tussle_prelude.Rng.t -> bool
(** [probe l rng] offers a {e virtual} data-plane probe: [true] iff a
    packet offered right now would survive the link's injected faults
    (up, not wire-lost, not gray-dropped).  Randomness comes from the
    caller's [rng], never the link's fault stream, and no counter or
    queue state is touched — a data-plane health detector can probe on
    its own schedule without perturbing traffic outcomes or the
    fault-accounting ledger.  Blind to queue occupancy by design: it
    tests the fault plane, not congestion. *)
