(** The packet-level network: links + forwarding + middleboxes + outcomes.

    [Net] wires a link graph to a forwarding policy and executes packet
    transit on a discrete-event {!Engine}.  Middleboxes attached to nodes
    inspect every packet transiting that node (including source and
    destination nodes — a host firewall is a middlebox at the host).

    Loose source routes are honoured: a packet with waypoints is routed
    toward each waypoint in turn using the same forwarding tables, which
    is exactly how user-selected provider-level routes ride on top of
    provider-selected routing (§V-A4). *)

type drop_reason =
  | No_route  (** forwarding returned no next hop *)
  | Queue_full of int * int  (** link (u, v) dropped it *)
  | Filtered of string * int  (** middlebox name, node *)
  | Ttl_exceeded
  | Link_down of int * int  (** injected fault: link (u, v) was down *)
  | Fault_loss of int * int  (** injected fault: lost on the wire (u, v) *)
  | Corrupted of int * int  (** injected fault: damaged crossing (u, v) *)
  | Gray_loss of int * int
      (** injected gray failure: dropped on (u, v) while the link kept
          answering liveness probes *)
  | Blackholed of int
      (** Byzantine discard: the node silently ate transit traffic
          while answering hellos — distinct from [Filtered] so covert
          middlebox failure and Byzantine forwarding are separable in
          {!losses_by_reason} *)

type outcome =
  | Delivered of { latency : float; degraded : bool; tapped : bool }
  | Lost of drop_reason

type forwarding = node:int -> target:int -> Packet.t -> int option
(** Next hop from [node] toward [target] for this packet, or [None]. *)

type t

val create :
  ?ttl:int -> Link.t Tussle_prelude.Graph.t -> forwarding -> t
(** [create links fwd].  [ttl] (default 64) bounds hop count. *)

val set_forwarding : t -> forwarding -> unit
(** Swap the forwarding function mid-run.  Packets already in flight
    consult the new tables at their {e next} hop — exactly how a
    re-converged control plane behaves.  The swap takes effect for the
    event that runs after it; it never reorders scheduled events. *)

val add_middlebox : t -> int -> Middlebox.t -> unit
(** Attach a middlebox at a node; multiple middleboxes run in attachment
    order. *)

val middleboxes_at : t -> int -> Middlebox.t list

val set_blackhole : t -> int -> bool -> unit
(** Mark (or unmark) a node as Byzantine: it keeps accepting traffic
    addressed to itself — and keeps answering control-plane hellos,
    which never transit it — but silently discards every packet it
    would forward for others (source-route waypoints included, which
    is exactly how transit probes unmask it). *)

val is_blackhole : t -> int -> bool

val inject : t -> Engine.t -> Packet.t -> unit
(** Offer a packet to the network at the engine's current time.  The
    outcome is recorded when transit completes (run the engine). *)

val on_complete : t -> (Packet.t -> outcome -> unit) -> unit
(** Register a completion observer, called (in registration order) the
    moment any packet's transit completes — while the engine is still
    running, so observers can schedule follow-up events (ACKs,
    retransmissions).  Observers also see probe traffic; filter by
    packet id. *)

val outcomes : t -> (Packet.t * outcome) list
(** All completed packets, in completion order. *)

val injected_count : t -> int
(** Packets offered via {!inject} over the net's lifetime.  With
    {!in_flight}, the packet-conservation ledger the chaos invariants
    check: [injected_count = delivered + lost + in_flight]. *)

val in_flight : t -> int
(** Packets injected whose transit has not yet completed (their
    arrival events are still in the engine's queue). *)

val delivered_count : t -> int

val lost_count : t -> int

val delivery_ratio : t -> float
(** Delivered / completed; [0.] when nothing completed. *)

val mean_latency : t -> float option
(** Mean end-to-end latency over delivered packets. *)

val losses_by_reason : t -> (string * int) list
(** Aggregated loss counts keyed by a stable reason label.  Fault
    reasons use the labels ["link-down"], ["fault-loss"],
    ["corrupted"], ["gray-loss"] and ["blackholed"].  When
    {!Tussle_obs.Metrics} is enabled every completion also bumps a
    per-reason counter
    ([net.delivered], [net.drops.no_route], [net.drops.queue_full],
    [net.drops.filtered], [net.drops.ttl_exceeded],
    [net.drops.link_down], [net.drops.fault_loss],
    [net.drops.corrupted], [net.drops.gray_loss],
    [net.drops.blackholed]), attributing drops to their fault. *)

val clear_outcomes : t -> unit

val links : t -> Link.t Tussle_prelude.Graph.t

val drop_reason_label : drop_reason -> string
