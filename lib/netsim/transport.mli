(** Closed-loop transport: window-based, ACK-clocked, AIMD — and its
    misbehaving variant.

    This is the packet-level companion of {!Congestion}'s fluid model,
    for experiments that need real queues and real drops.  A connection
    transfers [total_packets] data packets from [src] to [dst] over a
    {!Net}:

    {ul
    {- up to [cwnd] packets are kept in flight;}
    {- a delivery is acknowledged after one ACK delay (the reverse path
       is modelled as a fixed-latency, uncongested channel — ACKs are
       small and rarely the bottleneck; this keeps the forward queues
       the only contention point);}
    {- on an ACK, a compliant connection grows [cwnd] by
       [increase / cwnd] (additive increase per RTT);}
    {- on a loss, a compliant connection halves [cwnd] and retransmits;
       an {e aggressive} one just retransmits — Savage's endpoint that
       ignores congestion.}}

    {b Resilience} (for runs under {!Tussle_fault} injection): the
    retransmission timer can back off exponentially with seeded jitter,
    and a [max_retries] budget turns a dead path into an {e abandoned}
    connection instead of an engine that never drains — experiments
    quantify graceful degradation rather than hanging.  All resilience
    knobs default to the historical behaviour (fixed timer, unlimited
    retries, no rng draws). *)

type behaviour = Compliant | Aggressive

type status =
  | Active  (** still sending (or stalled waiting on timers) *)
  | Completed  (** every data packet delivered and acknowledged *)
  | Abandoned  (** gave up: some packet exhausted [max_retries] *)

type t

val start :
  ?behaviour:behaviour ->
  ?initial_window:float ->
  ?increase:float ->
  ?ack_delay:float ->
  ?loss_timeout:float ->
  ?rto_backoff:float ->
  ?rto_max:float ->
  ?rto_jitter:float ->
  ?jitter_rng:Tussle_prelude.Rng.t ->
  ?max_retries:int ->
  Engine.t ->
  Net.t ->
  Traffic.t ->
  src:int ->
  dst:int ->
  total_packets:int ->
  t
(** Open the connection and send the first window.  The connection
    registers a {!Net.on_complete} observer; create all connections
    before running the engine.  Defaults: compliant, initial window 1,
    additive increase 1 per RTT, ACK delay 2 ms, loss timeout 10x the
    ACK delay (a retransmission timer well above the RTT, as real
    stacks use — it also keeps a misbehaving sender's packet storm
    paced rather than instantaneous).

    Resilience knobs: a packet on its [k]-th retransmission waits
    [min rto_max (loss_timeout *. rto_backoff ^ k)] before the loss is
    acted on ([rto_backoff] >= 1, default 1 = fixed timer; [rto_max]
    defaults to no cap), scaled by a uniform factor in
    [1 ± rto_jitter] drawn from [jitter_rng] when [rto_jitter > 0]
    (desynchronizes retry storms; seeded, hence reproducible).
    [max_retries] (default unlimited) bounds retransmissions per
    packet: on exhaustion the whole connection moves to [Abandoned],
    stops sending, and lets the engine drain.  Raises
    [Invalid_argument] on out-of-range knobs, including a positive
    [rto_jitter] without a [jitter_rng]. *)

val status : t -> status

val completed : t -> bool
(** All data packets delivered and acknowledged. *)

val abandoned : t -> bool

val abandon_time : t -> float option
(** Engine time at which the connection gave up. *)

val acked : t -> int
(** Distinct data packets acknowledged so far. *)

val retransmissions : t -> int

val losses : t -> int

val timeouts : t -> int
(** Retransmission-timer expiries acted on (equal to {!losses} for the
    default fixed timer; diagnostic for backoff experiments). *)

val cwnd : t -> float

val finish_time : t -> float option
(** Engine time at which the transfer completed. *)

val last_progress : t -> float
(** Engine time of the most recent {e new} acknowledgement (the start
    time before any ack).  The gap to [now] is the current stall. *)

val stalled : t -> now:float -> idle:float -> bool
(** Still [Active] but without new acknowledgements for at least
    [idle] seconds — the "quantify graceful degradation" probe. *)

val flow : t -> int
(** This connection's flight-recorder flow id: a fresh id from
    {!Tussle_obs.Flight.new_flow} when the recorder was enabled at
    {!start} time, {!Tussle_obs.Flight.control_flow} otherwise.  Every
    connection-level event (xfer-start/-send/-timer/-complete/-abandon)
    carries it, so a transfer's record joins against the per-packet
    events of the packets it injected. *)

val goodput : t -> now:float -> float
(** Acknowledged packets per second, up to [now] (or the finish or
    abandon time if earlier).  0 before anything is acknowledged. *)
