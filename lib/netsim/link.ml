module Rng = Tussle_prelude.Rng

type fault = Down | Loss | Corrupt | Gray

type t = {
  latency : float;
  bandwidth_bps : float;
  queue_capacity : int;
  mutable busy_until : float;
  (* departure times of packets still queued or in service, oldest first *)
  mutable departures : float list;
  mutable busy_time : float;
  mutable sent : int;
  mutable dropped : int;
  (* contract: try_enqueue must be called in non-decreasing [now] order *)
  mutable last_offered : float;
  (* fault-injection state (Tussle_fault flips these via engine events) *)
  mutable up : bool;
  mutable loss_prob : float;
  mutable corrupt_prob : float;
  (* gray failure: drops data while [is_up] — the control-plane view —
     keeps reporting healthy.  Counted separately from [fault_drops] so
     the chaos ledger can prove no covert drop went unattributed. *)
  mutable gray_loss_prob : float;
  mutable extra_latency : float;
  mutable fault_rng : Rng.t option;
  mutable fault_drops : int;
  mutable gray_drops : int;
  mutable corrupted : int;
}

let make ?(queue_capacity = 64) ~latency ~bandwidth_bps () =
  if latency <= 0.0 then invalid_arg "Link.make: non-positive latency";
  if bandwidth_bps <= 0.0 then invalid_arg "Link.make: non-positive bandwidth";
  if queue_capacity <= 0 then invalid_arg "Link.make: non-positive capacity";
  {
    latency;
    bandwidth_bps;
    queue_capacity;
    busy_until = 0.0;
    departures = [];
    busy_time = 0.0;
    sent = 0;
    dropped = 0;
    last_offered = neg_infinity;
    up = true;
    loss_prob = 0.0;
    corrupt_prob = 0.0;
    gray_loss_prob = 0.0;
    extra_latency = 0.0;
    fault_rng = None;
    fault_drops = 0;
    gray_drops = 0;
    corrupted = 0;
  }

let latency l = l.latency

let bandwidth_bps l = l.bandwidth_bps

let transmission_delay l bytes =
  float_of_int (bytes * 8) /. l.bandwidth_bps

let reap l now =
  l.departures <- List.filter (fun d -> d > now) l.departures

let queued l ~now =
  reap l now;
  List.length l.departures

(* Occupancy as of the last offered time, without another reap: cheap
   enough for the flight recorder to read right after [try_enqueue]. *)
let queue_length l = List.length l.departures

(* ---------- fault-injection state ---------- *)

let is_up l = l.up

let set_up l up = l.up <- up

let set_fault_rng l rng = l.fault_rng <- Some rng

let check_prob ~what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Link.%s: probability outside [0,1]" what)

let require_rng l ~what p =
  if p > 0.0 && l.fault_rng = None then
    invalid_arg (Printf.sprintf "Link.%s: set_fault_rng first" what)

let set_loss_prob l p =
  check_prob ~what:"set_loss_prob" p;
  require_rng l ~what:"set_loss_prob" p;
  l.loss_prob <- p

let set_corrupt_prob l p =
  check_prob ~what:"set_corrupt_prob" p;
  require_rng l ~what:"set_corrupt_prob" p;
  l.corrupt_prob <- p

let set_gray_loss_prob l p =
  check_prob ~what:"set_gray_loss_prob" p;
  require_rng l ~what:"set_gray_loss_prob" p;
  l.gray_loss_prob <- p

let gray_loss_prob l = l.gray_loss_prob

let set_extra_latency l x =
  if not (x >= 0.0) then invalid_arg "Link.set_extra_latency: negative";
  l.extra_latency <- x

let extra_latency l = l.extra_latency

let draw l p =
  p > 0.0
  && (match l.fault_rng with Some rng -> Rng.bernoulli rng p | None -> false)

(* A virtual data-plane probe: would a packet offered now survive the
   link's injected faults?  Draws from the caller's rng, not the fault
   stream, and touches no counters or queue state — so probing never
   perturbs the simulation's ledgers or the episode's own loss draws.
   Deliberately blind to queue occupancy: it tests the fault plane
   (down, wire loss, gray loss), not congestion. *)
let probe l rng =
  l.up
  && (not (l.loss_prob > 0.0 && Rng.bernoulli rng l.loss_prob))
  && not (l.gray_loss_prob > 0.0 && Rng.bernoulli rng l.gray_loss_prob)

(* ---------- the transmission path ---------- *)

let try_enqueue l ~now bytes =
  if now < l.last_offered then
    invalid_arg "Link.try_enqueue: decreasing now (calls must be in \
                 non-decreasing time order)";
  l.last_offered <- now;
  reap l now;
  if not l.up then begin
    l.fault_drops <- l.fault_drops + 1;
    `Faulted Down
  end
  else if draw l l.loss_prob then begin
    l.fault_drops <- l.fault_drops + 1;
    `Faulted Loss
  end
  else if draw l l.gray_loss_prob then begin
    l.gray_drops <- l.gray_drops + 1;
    `Faulted Gray
  end
  else if List.length l.departures >= l.queue_capacity then begin
    l.dropped <- l.dropped + 1;
    `Dropped
  end
  else begin
    let start = Float.max now l.busy_until in
    let tx = transmission_delay l bytes in
    let departure = start +. tx in
    l.busy_until <- departure;
    l.busy_time <- l.busy_time +. tx;
    l.departures <- l.departures @ [ departure ];
    l.sent <- l.sent + 1;
    if draw l l.corrupt_prob then begin
      (* the bits went out but arrive damaged: capacity was consumed *)
      l.corrupted <- l.corrupted + 1;
      `Faulted Corrupt
    end
    else `Sent (departure +. l.latency +. l.extra_latency)
  end

let utilization l ~now =
  if now <= 0.0 then 0.0 else Float.min 1.0 (l.busy_time /. now)

let packets_sent l = l.sent

let packets_dropped l = l.dropped

let fault_drops l = l.fault_drops

let gray_drops l = l.gray_drops

let corrupted_count l = l.corrupted

let reset_counters l =
  l.sent <- 0;
  l.dropped <- 0;
  l.busy_time <- 0.0;
  l.fault_drops <- 0;
  l.gray_drops <- 0;
  l.corrupted <- 0
