(* A run's behavior signature: a coarse, canonical fingerprint of the
   invariant obs ledger.  The coverage-guided search keeps a mutant in
   its live corpus exactly when its signature is new, so "coverage"
   means "made the simulator do something no earlier plan did" —
   distinct drop profiles, transfer outcomes, healing activity, or
   event-queue pressure — rather than "has different bytes". *)

(* log2 buckets, like the obs histograms: 0, 1, 2, 3-4, 5-8, ... —
   exact counts would make every plan "novel" and dissolve the
   signal. *)
let bucket n =
  if n <= 0 then 0
  else begin
    let b = ref 1 and top = ref 1 in
    while n > !top do
      incr b;
      top := !top * 2
    done;
    !b
  end

let transfer_counts transfers =
  List.fold_left
    (fun (c, a, v) -> function
      | Invariant.Completed -> (c + 1, a, v)
      | Invariant.Abandoned -> (c, a + 1, v)
      | Invariant.Active -> (c, a, v + 1))
    (0, 0, 0) transfers

let of_obs (o : Invariant.obs) =
  let drops =
    o.Invariant.drops_by_reason
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (reason, n) -> (reason, bucket n))
    |> List.sort compare
    |> List.map (fun (reason, b) -> Printf.sprintf "%s:%d" reason b)
    |> String.concat ","
  in
  let completed, abandoned, active = transfer_counts o.Invariant.transfers in
  let covert =
    o.Invariant.link_gray_drops
    + Option.value ~default:0
        (List.assoc_opt "blackholed" o.Invariant.drops_by_reason)
  in
  Printf.sprintf "drops[%s] xfer[%d/%d/%d] heal:%d covert:%d hw:%d inflight:%d"
    drops completed abandoned active
    (bucket o.Invariant.reconvergences)
    (bucket covert)
    (bucket o.Invariant.engine_high_water)
    (bucket o.Invariant.in_flight)
