module Rng = Tussle_prelude.Rng
module Pool = Tussle_prelude.Pool
module Plan = Tussle_fault.Plan

type run = {
  index : int;
  scenario : string;
  seed : int;
  episodes : int;
  plan : Plan.t;
  violations : Invariant.violation list;
}

(* Per-run derivation depends only on (master seed, index) — never on
   which worker domain picked the item up — so a sweep is byte-
   identical for any --domains count.  7919 (the 1000th prime) just
   spreads the per-index seeds away from each other. *)
let draw ~master_seed ~index (s : Scenario.t) =
  let rng = Rng.create (master_seed + (7919 * (index + 1))) in
  let episodes = 1 + Rng.int rng 4 in
  let plan = Plan.random rng ~links:s.links ~horizon:s.horizon ~episodes in
  let seed = Rng.int rng 1_000_000 in
  (plan, episodes, seed)

let scenario_for index =
  List.nth Scenario.all (index mod List.length Scenario.all)

let run_one ~master_seed index =
  let s = scenario_for index in
  let plan, episodes, seed = draw ~master_seed ~index s in
  let obs = s.run ~seed ~plan in
  {
    index;
    scenario = s.name;
    seed;
    episodes;
    plan;
    violations = Invariant.check obs;
  }

let run_sweep ?domains ~seed ~runs () =
  if runs < 1 then invalid_arg "Sweep.run_sweep: runs must be >= 1";
  Pool.map ?domains (run_one ~master_seed:seed) (List.init runs Fun.id)

let failures runs = List.filter (fun r -> r.violations <> []) runs

let still_fails (s : Scenario.t) ~seed plan =
  Invariant.check (s.run ~seed ~plan) <> []

let shrink_run r =
  match Scenario.find r.scenario with
  | None -> r.plan
  | Some s -> Shrink.shrink ~still_fails:(still_fails s ~seed:r.seed) r.plan

let replay (e : Corpus.entry) =
  match Scenario.find e.scenario with
  | None -> Error (Printf.sprintf "unknown scenario %S" e.scenario)
  | Some s -> Ok (Invariant.check (s.run ~seed:e.seed ~plan:e.plan))
