module Flight = Tussle_obs.Flight
module Json = Tussle_obs.Json
module Plan = Tussle_fault.Plan

type result = {
  entry : Corpus.entry;
  obs : Invariant.obs;
  violations : Invariant.violation list;
  events : Flight.event list;
  overwritten : int;
  narrative : string;
}

(* ---------- formatting ---------- *)

(* One float format everywhere: the narrative's determinism contract
   is byte-identity for a given (plan, seed), so every number flows
   through here. *)
let ft x = Printf.sprintf "%g" x

let flow_label flow =
  if flow >= 0 then Printf.sprintf "packet %d" flow
  else if flow = Flight.control_flow then "control"
  else Printf.sprintf "transfer #%d" (-flow - 1)

(* ---------- episode attribution ---------- *)

let in_window (w : Plan.window) t = t >= w.Plan.from_s && t < w.Plan.until_s

let edge_eq u v n p = (u = n && v = p) || (u = p && v = n)

(* Route-dependent drops (no-route, ttl-exceeded, queue-full) are a
   global consequence of the topology a fault carved up, so any open
   topology episode explains them; wire-level drops must match the
   faulted link itself. *)
let episode_explains (e : Flight.event) (spec : Plan.spec) =
  let t = e.Flight.sim_t in
  let indirect =
    match e.Flight.detail with
    | "no-route" | "ttl-exceeded" | "queue-full" -> true
    | _ -> false
  in
  match spec with
  | Plan.Link_down { u; v; w } ->
    in_window w t
    && ((e.Flight.detail = "link-down" && edge_eq u v e.Flight.node e.Flight.peer)
       || indirect)
  | Plan.Link_loss { u; v; w; _ } ->
    e.Flight.detail = "fault-loss" && in_window w t
    && edge_eq u v e.Flight.node e.Flight.peer
  | Plan.Link_corrupt { u; v; w; _ } ->
    e.Flight.detail = "corrupted" && in_window w t
    && edge_eq u v e.Flight.node e.Flight.peer
  | Plan.Latency_spike _ -> false
  | Plan.Node_crash { node; w } ->
    in_window w t
    && ((e.Flight.detail = "link-down"
        && (e.Flight.node = node || e.Flight.peer = node))
       || indirect)
  | Plan.Middlebox_break { node; w; _ } ->
    in_window w t
    && e.Flight.detail = "filtered:" ^ Plan.broken_device_name
    && e.Flight.node = node
  | Plan.Gray_loss { u; v; w; _ } ->
    e.Flight.detail = "gray-loss" && in_window w t
    && edge_eq u v e.Flight.node e.Flight.peer
  | Plan.Unidirectional_down { u; v; w } ->
    (* drops carry the sending direction (node -> peer), so only the
       faulted direction matches — the healthy reverse path never
       gets blamed *)
    in_window w t
    && ((e.Flight.detail = "link-down"
        && e.Flight.node = u && e.Flight.peer = v)
       || indirect)
  | Plan.Link_flap { u; v; w; _ } ->
    (* a "link-down" drop on this edge inside the window can only have
       happened during a down phase, so no phase arithmetic is needed *)
    in_window w t
    && ((e.Flight.detail = "link-down" && edge_eq u v e.Flight.node e.Flight.peer)
       || indirect)
  | Plan.Blackhole { node; w } ->
    in_window w t
    && ((e.Flight.detail = "blackholed" && e.Flight.node = node) || indirect)

let attribution plan (e : Flight.event) =
  let hits =
    List.mapi (fun i spec -> (i, spec)) plan
    |> List.filter (fun (_, spec) -> episode_explains e spec)
  in
  match hits with
  | [] -> "no episode open at this time"
  | hits ->
    "during "
    ^ String.concat ", "
        (List.map
           (fun (i, spec) ->
             Printf.sprintf "episode [%d] %s" i (Plan.spec_string spec))
           hits)

(* ---------- per-event lines ---------- *)

let location (e : Flight.event) =
  if e.Flight.peer >= 0 then
    Printf.sprintf "link %d-%d" e.Flight.node e.Flight.peer
  else Printf.sprintf "node %d" e.Flight.node

let event_line plan (e : Flight.event) =
  let t = ft e.Flight.sim_t in
  match e.Flight.kind with
  | "inject" ->
    Printf.sprintf "t=%ss inject at node %d toward node %d (%s, %sB)" t
      e.Flight.node e.Flight.peer e.Flight.detail (ft e.Flight.value)
  | "hop" ->
    Printf.sprintf "t=%ss forwarded %d->%d (queue depth %s)" t e.Flight.node
      e.Flight.peer (ft e.Flight.value)
  | "mb-degrade" ->
    Printf.sprintf "t=%ss middlebox %S at node %d degraded QoS" t
      e.Flight.detail e.Flight.node
  | "mb-tap" ->
    Printf.sprintf "t=%ss middlebox %S at node %d tapped a copy" t
      e.Flight.detail e.Flight.node
  | "drop" ->
    Printf.sprintf "t=%ss DROPPED at %s: %s — %s" t (location e)
      e.Flight.detail (attribution plan e)
  | "deliver" ->
    Printf.sprintf "t=%ss delivered at node %d (latency %ss%s)" t
      e.Flight.node (ft e.Flight.value)
      (if e.Flight.detail = "" then "" else ", " ^ e.Flight.detail)
  | "xfer-start" ->
    Printf.sprintf "t=%ss transfer opened %d->%d (%s, %s packets)" t
      e.Flight.node e.Flight.peer e.Flight.detail (ft e.Flight.value)
  | "xfer-send" ->
    Printf.sprintf "t=%ss sent seq %d as packet %d (attempt %s)" t
      e.Flight.node e.Flight.peer (ft (e.Flight.value +. 1.0))
  | "xfer-timer" ->
    Printf.sprintf
      "t=%ss seq %d (packet %d) lost to %s; retransmission timer %ss" t
      e.Flight.node e.Flight.peer e.Flight.detail (ft e.Flight.value)
  | "xfer-complete" ->
    Printf.sprintf "t=%ss transfer COMPLETED in %ss" t (ft e.Flight.value)
  | "xfer-abandon" ->
    Printf.sprintf "t=%ss transfer ABANDONED (%s) with %s acked" t
      e.Flight.detail (ft e.Flight.value)
  | "fault-open" ->
    Printf.sprintf "t=%ss fault opens:  [%s] %s" t (ft e.Flight.value)
      e.Flight.detail
  | "fault-close" ->
    Printf.sprintf "t=%ss fault closes: [%s] %s" t (ft e.Flight.value)
      e.Flight.detail
  | "heal-detect" ->
    Printf.sprintf "t=%ss selfheal detects link %d-%d %s" t e.Flight.node
      e.Flight.peer e.Flight.detail
  | "heal-reconverge" ->
    Printf.sprintf
      "t=%ss selfheal reconverges (%s adjacencies believed down)" t
      (ft e.Flight.value)
  | kind ->
    Printf.sprintf "t=%ss %s %s" t kind e.Flight.detail

(* ---------- flows of interest ---------- *)

let interesting_kind = function
  | "drop" | "xfer-abandon" -> true
  | _ -> false

(* Flows that dropped a packet or gave up, in order of first
   appearance; the cap keeps narratives readable for storms. *)
let max_flows = 5

let flows_of_interest events =
  let order = ref [] in
  let by_flow = Hashtbl.create 64 in
  List.iter
    (fun (e : Flight.event) ->
      if e.Flight.flow <> Flight.control_flow then begin
        (match Hashtbl.find_opt by_flow e.Flight.flow with
        | None ->
          order := e.Flight.flow :: !order;
          Hashtbl.replace by_flow e.Flight.flow ([ e ], interesting_kind e.Flight.kind)
        | Some (es, hit) ->
          Hashtbl.replace by_flow e.Flight.flow
            (e :: es, hit || interesting_kind e.Flight.kind))
      end)
    events;
  List.rev !order
  |> List.filter_map (fun flow ->
         match Hashtbl.find by_flow flow with
         | es, true -> Some (flow, List.rev es)
         | _, false -> None)

let render_flows buf plan events =
  let flows = flows_of_interest events in
  let shown = List.filteri (fun i _ -> i < max_flows) flows in
  (match shown with
  | [] ->
    Buffer.add_string buf
      "flows of interest: none (no drops, no abandoned transfers)\n"
  | _ ->
    Buffer.add_string buf
      (Printf.sprintf "flows of interest (%d of %d with drops or abandonment):\n"
         (List.length shown) (List.length flows));
    List.iter
      (fun (flow, es) ->
        Buffer.add_string buf (Printf.sprintf "  %s:\n" (flow_label flow));
        List.iter
          (fun e ->
            Buffer.add_string buf ("    " ^ event_line plan e ^ "\n"))
          es)
      shown);
  if List.length flows > max_flows then
    Buffer.add_string buf
      (Printf.sprintf "  ... and %d more flow(s) not shown\n"
         (List.length flows - max_flows))

(* ---------- the narrative ---------- *)

let render ~(entry : Corpus.entry) ~(obs : Invariant.obs) ~violations
    ~events ~overwritten =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "tussle explain: scenario %s, seed %d\n" entry.Corpus.scenario
    entry.Corpus.seed;
  add "plan (%d episode(s)):\n" (List.length entry.Corpus.plan);
  List.iteri
    (fun i spec -> add "  [%d] %s\n" i (Plan.spec_string spec))
    entry.Corpus.plan;
  (match violations with
  | [] ->
    add "verdict: clean — all %d invariants hold\n"
      (List.length Invariant.names)
  | vs ->
    add "verdict: %d violation(s)\n" (List.length vs);
    List.iter (fun v -> add "  - %s\n" (Invariant.violation_string v)) vs);
  add "ledger: injected %d  delivered %d  dropped %d  in-flight %d  \
       engine-pending %d\n"
    obs.Invariant.injected obs.Invariant.delivered obs.Invariant.dropped
    obs.Invariant.in_flight obs.Invariant.engine_pending;
  (match obs.Invariant.drops_by_reason with
  | [] -> add "drops by reason: none\n"
  | reasons ->
    add "drops by reason:\n";
    List.iter (fun (label, n) -> add "  %s: %d\n" label n) reasons);
  (match obs.Invariant.transfers with
  | [] -> ()
  | ts ->
    add "transfers: %s\n"
      (String.concat ", "
         (List.map
            (function
              | Invariant.Completed -> "completed"
              | Invariant.Abandoned -> "abandoned"
              | Invariant.Active -> "active")
            ts)));
  add "recorded %d event(s) (%d overwritten by ring wrap-around)\n"
    (List.length events) overwritten;
  let control =
    List.filter
      (fun (e : Flight.event) -> e.Flight.flow = Flight.control_flow)
      events
  in
  (match control with
  | [] -> add "control plane: quiet (no fault windows, no reconvergence)\n"
  | cs ->
    add "control plane:\n";
    List.iter
      (fun e ->
        add "  %s\n" (event_line entry.Corpus.plan e))
      cs);
  render_flows buf entry.Corpus.plan events;
  Buffer.contents buf

let narrative_of_violation ~(entry : Corpus.entry) ~events violation =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "violation: %s\n" (Invariant.violation_string violation));
  render_flows buf entry.Corpus.plan events;
  Buffer.contents buf

(* ---------- the replay ---------- *)

let run (entry : Corpus.entry) =
  match Scenario.find entry.Corpus.scenario with
  | None ->
    Error (Printf.sprintf "unknown scenario %S" entry.Corpus.scenario)
  | Some sc ->
    (* The scenario runs in the calling domain: single-threaded, so
       the event stream — and hence the narrative — is identical
       whatever domain count the CLI was invoked with. *)
    Flight.enable ();
    Flight.reset ();
    let obs =
      Fun.protect
        ~finally:(fun () -> Flight.disable ())
        (fun () ->
          sc.Scenario.run ~seed:entry.Corpus.seed ~plan:entry.Corpus.plan)
    in
    let events = Flight.events () in
    let overwritten = Flight.dropped () in
    Flight.reset ();
    let violations = Invariant.check obs in
    let narrative = render ~entry ~obs ~violations ~events ~overwritten in
    Ok { entry; obs; violations; events; overwritten; narrative }

(* ---------- the artifact ---------- *)

let schema = "tussle.flow-trace/1"

let event_to_json (e : Flight.event) =
  Json.Obj
    [
      ("t", Json.Float e.Flight.sim_t);
      ("flow", Json.Int e.Flight.flow);
      ("kind", Json.Str e.Flight.kind);
      ("node", Json.Int e.Flight.node);
      ("peer", Json.Int e.Flight.peer);
      ("detail", Json.Str e.Flight.detail);
      ("value", Json.Float e.Flight.value);
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("scenario", Json.Str r.entry.Corpus.scenario);
      ("seed", Json.Int r.entry.Corpus.seed);
      ( "plan",
        Json.List
          (List.map (fun s -> Json.Str (Plan.spec_string s)) r.entry.Corpus.plan)
      );
      ("clean", Json.Bool (r.violations = []));
      ( "violations",
        Json.List
          (List.map
             (fun (v : Invariant.violation) ->
               Json.Obj
                 [
                   ("invariant", Json.Str v.Invariant.invariant);
                   ("detail", Json.Str v.Invariant.detail);
                 ])
             r.violations) );
      ( "ledger",
        Json.Obj
          [
            ("injected", Json.Int r.obs.Invariant.injected);
            ("delivered", Json.Int r.obs.Invariant.delivered);
            ("dropped", Json.Int r.obs.Invariant.dropped);
            ("in_flight", Json.Int r.obs.Invariant.in_flight);
            ("engine_pending", Json.Int r.obs.Invariant.engine_pending);
          ] );
      ( "drops_by_reason",
        Json.Obj
          (List.map
             (fun (label, n) -> (label, Json.Int n))
             r.obs.Invariant.drops_by_reason) );
      ("events_recorded", Json.Int (List.length r.events));
      ("events_overwritten", Json.Int r.overwritten);
      ("events", Json.List (List.map event_to_json r.events));
    ]

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "flow-trace: missing or ill-typed %s" what)

let ( let* ) r f = Stdlib.Result.bind r f

let validate_event i ev =
  let field what conv =
    require
      (Printf.sprintf "events[%d].%s" i what)
      (Option.bind (Json.member what ev) conv)
  in
  let* _ = field "t" Json.to_float in
  let* _ = field "flow" Json.to_int in
  let* _ = field "kind" Json.to_str in
  let* _ = field "node" Json.to_int in
  let* _ = field "peer" Json.to_int in
  let* _ = field "detail" Json.to_str in
  let* _ = field "value" Json.to_float in
  Ok ()

let validate_json j =
  let field what conv = require what (Option.bind (Json.member what j) conv) in
  let* tag = field "schema" Json.to_str in
  if tag <> schema then
    Error (Printf.sprintf "flow-trace: schema %S, expected %S" tag schema)
  else
    let* _ = field "scenario" Json.to_str in
    let* _ = field "seed" Json.to_int in
    let* plan = field "plan" Json.to_list in
    let* () =
      if List.for_all (fun p -> Json.to_str p <> None) plan then Ok ()
      else Error "flow-trace: plan contains a non-string episode"
    in
    let* _ =
      require "clean"
        (match Json.member "clean" j with
        | Some (Json.Bool b) -> Some b
        | _ -> None)
    in
    let* ledger = require "ledger" (Json.member "ledger" j) in
    let* () =
      List.fold_left
        (fun acc what ->
          let* () = acc in
          let* _ =
            require ("ledger." ^ what)
              (Option.bind (Json.member what ledger) Json.to_int)
          in
          Ok ())
        (Ok ())
        [ "injected"; "delivered"; "dropped"; "in_flight"; "engine_pending" ]
    in
    let* events = field "events" Json.to_list in
    let* recorded = field "events_recorded" Json.to_int in
    if recorded <> List.length events then
      Error
        (Printf.sprintf "flow-trace: events_recorded %d but %d events"
           recorded (List.length events))
    else
      List.fold_left
        (fun acc (i, ev) ->
          let* () = acc in
          validate_event i ev)
        (Ok ())
        (List.mapi (fun i ev -> (i, ev)) events)
