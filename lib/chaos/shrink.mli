(** Delta-debugging shrinker for failing fault plans.

    When a chaos run violates an invariant, the drawn plan usually
    carries several episodes that have nothing to do with the bug.
    [shrink] minimizes the plan against a failure oracle so the corpus
    stores the smallest reproducer we can find. *)

val shrink :
  still_fails:(Tussle_fault.Plan.t -> bool) ->
  Tussle_fault.Plan.t ->
  Tussle_fault.Plan.t
(** [shrink ~still_fails plan] assumes [still_fails plan] and returns a
    1-minimal sub-plan: removing any single remaining episode makes the
    failure disappear.  Episodes keep their relative order, so the
    result is still a valid plan for the same scenario.  The oracle is
    called O(n²) times in the worst case — each call is one full
    scenario simulation, which is why chaos plans are kept short. *)
