module Plan = Tussle_fault.Plan

(* Greedy delta-debugging over plan episodes.  A plan is a list, so
   the search space is "which subset of episodes still reproduces the
   violation"; we drive toward a 1-minimal answer: no single episode
   can be removed without losing the failure.  [still_fails] is the
   expensive oracle (a full simulation), so we try the cheapest
   candidates first — the empty plan, then one-at-a-time removals,
   restarting after every success so later removals see the smaller
   plan. *)

let drop_nth plan i = List.filteri (fun j _ -> j <> i) plan

let shrink ~still_fails plan =
  if still_fails [] then []
  else
    let rec minimize plan =
      let n = List.length plan in
      let rec try_drop i =
        if i >= n then None
        else
          let candidate = drop_nth plan i in
          if still_fails candidate then Some candidate else try_drop (i + 1)
      in
      if n <= 1 then plan
      else match try_drop 0 with
        | Some smaller -> minimize smaller
        | None -> plan
    in
    minimize plan
