(** [tussle explain]: replay a corpus reproducer with the flight
    recorder on and turn the causal event stream into a narrative.

    A {!Corpus.entry} (scenario, seed, plan) is replayed exactly as
    the chaos sweep ran it, but with {!Tussle_obs.Flight} enabled.
    The result is

    {ul
    {- a deterministic human-readable {e narrative}: the plan's
       episodes, the invariant verdict, the drop ledger, the
       control-plane timeline (fault windows opening and closing,
       failure detections, reconvergences), and the full causal record
       of the flows that dropped packets or gave up — each drop
       attributed to the fault episode whose window and location
       explain it;}
    {- a machine-readable [tussle.flow-trace/1] JSON artifact carrying
       the same verdict plus every retained event.}}

    Replay always runs in the calling domain: the scenarios are
    single-threaded simulations, so the narrative for a given
    (plan, seed) is byte-identical whatever [--domains] the CLI was
    asked for. *)

type result = {
  entry : Corpus.entry;
  obs : Invariant.obs;  (** the replayed run's final ledger *)
  violations : Invariant.violation list;  (** [[]] means clean *)
  events : Tussle_obs.Flight.event list;  (** ordered by (sim_t, seq) *)
  overwritten : int;  (** events lost to ring wrap-around *)
  narrative : string;  (** the rendered explanation *)
}

val run : Corpus.entry -> (result, string) Stdlib.result
(** Replay the entry with the recorder on.  [Error] names an unknown
    scenario.  The recorder is reset before and disabled after the
    replay, whatever state it was in. *)

val narrative_of_violation :
  entry:Corpus.entry ->
  events:Tussle_obs.Flight.event list ->
  Invariant.violation ->
  string
(** The per-violation attachment the chaos sweep prints: the offending
    flows' causal records (the same "flows of interest" section the
    full narrative carries), headed by the violation itself. *)

val to_json : result -> Tussle_obs.Json.t
(** The [tussle.flow-trace/1] artifact. *)

val validate_json : Tussle_obs.Json.t -> (unit, string) Stdlib.result
(** Structural check of a parsed artifact: schema tag, required
    fields, and per-event field types.  CI runs this on every
    [tussle explain --json] output. *)
