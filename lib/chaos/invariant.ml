module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Link = Tussle_netsim.Link

type transfer_state = Completed | Abandoned | Active

type obs = {
  injected : int;
  delivered : int;
  dropped : int;
  in_flight : int;
  engine_pending : int;
  clock_start : float;
  clock_end : float;
  drops_by_reason : (string * int) list;
  link_fault_drops : int;
  link_corrupted : int;
  link_gray_drops : int;
  transfers : transfer_state list;
  engine_high_water : int;
  reconvergences : int;
  covert_budget : int option;
  fault_transitions : int option;
}

(* Fold over the distinct physical link objects (an undirected label
   shared both ways must be counted once — same dedup Inject uses). *)
let fold_links links ~init ~f =
  let seen = ref [] in
  Graph.fold_edges links ~init ~f:(fun acc _ _ l ->
      if List.memq l !seen then acc
      else begin
        seen := l :: !seen;
        f acc l
      end)

let observe ?(transfers = []) ?(reconvergences = 0) ?covert_budget
    ?fault_transitions ~clock_start engine net =
  let links = Net.links net in
  {
    injected = Net.injected_count net;
    delivered = Net.delivered_count net;
    dropped = Net.lost_count net;
    in_flight = Net.in_flight net;
    engine_pending = Engine.pending engine;
    clock_start;
    clock_end = Engine.now engine;
    drops_by_reason = Net.losses_by_reason net;
    link_fault_drops =
      fold_links links ~init:0 ~f:(fun acc l -> acc + Link.fault_drops l);
    link_corrupted =
      fold_links links ~init:0 ~f:(fun acc l -> acc + Link.corrupted_count l);
    link_gray_drops =
      fold_links links ~init:0 ~f:(fun acc l -> acc + Link.gray_drops l);
    transfers;
    engine_high_water = Engine.queue_depth_high_water engine;
    reconvergences;
    covert_budget;
    fault_transitions;
  }

type violation = { invariant : string; detail : string }

let reason_count o label =
  Option.value ~default:0 (List.assoc_opt label o.drops_by_reason)

(* The registry.  Each invariant returns [Some detail] on violation.
   This list is the intended home for future correctness checks: a new
   simulation-wide property becomes one entry here and every chaos
   sweep, corpus replay, and planted-violation test starts enforcing
   it. *)
let all : (string * (obs -> string option)) list =
  [
    ( "packet-conservation",
      fun o ->
        if o.injected = o.delivered + o.dropped + o.in_flight then None
        else
          Some
            (Printf.sprintf
               "injected %d <> delivered %d + dropped %d + in-flight %d"
               o.injected o.delivered o.dropped o.in_flight) );
    ( "engine-drained",
      fun o ->
        if o.engine_pending = 0 then None
        else Some (Printf.sprintf "%d events still queued" o.engine_pending) );
    ( "monotone-clock",
      fun o ->
        if o.clock_end >= o.clock_start then None
        else
          Some
            (Printf.sprintf "clock ran backwards: %g -> %g" o.clock_start
               o.clock_end) );
    ( "drop-accounting",
      fun o ->
        let by_reason =
          List.fold_left (fun acc (_, n) -> acc + n) 0 o.drops_by_reason
        in
        let attributed =
          reason_count o "link-down" + reason_count o "fault-loss"
        in
        let corrupted = reason_count o "corrupted" in
        if by_reason <> o.dropped then
          Some
            (Printf.sprintf "per-reason drops %d <> lost packets %d" by_reason
               o.dropped)
        else if o.link_fault_drops <> attributed then
          Some
            (Printf.sprintf
               "links counted %d fault drops, net attributed %d"
               o.link_fault_drops attributed)
        else if o.link_corrupted <> corrupted then
          Some
            (Printf.sprintf "links corrupted %d packets, net attributed %d"
               o.link_corrupted corrupted)
        else None );
    ( "no-hung-transfer",
      fun o ->
        match List.filter (fun s -> s = Active) o.transfers with
        | [] -> None
        | stuck ->
          Some
            (Printf.sprintf "%d transfer(s) neither completed nor abandoned"
               (List.length stuck)) );
    (* Covert drops must never be silently lost: every gray drop the
       links counted has to surface as an attributed "gray-loss"
       outcome, and — when the scenario stakes a claim — the total
       covert damage (gray + Byzantine discard) must stay within its
       declared budget.  A hello-only control plane that routes a flow
       into a gray link for a whole run busts any finite budget; a
       data-plane-verified one detects and reroutes. *)
    ( "no-silent-blackhole",
      fun o ->
        let gray = reason_count o "gray-loss" in
        if o.link_gray_drops <> gray then
          Some
            (Printf.sprintf "links counted %d gray drops, net attributed %d"
               o.link_gray_drops gray)
        else
          match o.covert_budget with
          | None -> None
          | Some budget ->
            let blackholed = reason_count o "blackholed" in
            if gray + blackholed > budget then
              Some
                (Printf.sprintf
                   "%d covert drops (gray %d + blackholed %d) exceed the \
                    declared budget %d"
                   (gray + blackholed) gray blackholed budget)
            else None );
    (* Static shortest-path tables are loop-free by construction, so a
       ttl-exceeded drop without a single reconvergence means the
       forwarding plane itself looped.  Transient micro-loops during
       reconvergence are expected and exempt. *)
    ( "no-forwarding-loop",
      fun o ->
        let ttl = reason_count o "ttl-exceeded" in
        if ttl > 0 && o.reconvergences = 0 then
          Some
            (Printf.sprintf
               "%d ttl-exceeded drop(s) with zero reconvergences: static \
                tables forwarded a loop"
               ttl)
        else None );
    (* Reconvergence churn must stay proportional to the churn the
       plan actually drove: each control-observable fault transition
       may trigger a detection and a restoration (and a damped control
       plane far fewer).  The generous 4t+4 bound still catches a
       control plane recomputing in a storm of its own making. *)
    ( "damping-bounds-reconvergence",
      fun o ->
        match o.fault_transitions with
        | None -> None
        | Some t ->
          let bound = (4 * t) + 4 in
          if o.reconvergences > bound then
            Some
              (Printf.sprintf
                 "%d reconvergences for %d fault transition(s) (bound %d)"
                 o.reconvergences t bound)
          else None );
  ]

let names = List.map fst all

let check o =
  List.filter_map
    (fun (invariant, f) ->
      Option.map (fun detail -> { invariant; detail }) (f o))
    all

let violation_string v = Printf.sprintf "%s: %s" v.invariant v.detail

(* ---------- sweep-report invariants ---------- *)

module Sweep_report = Tussle_obs.Sweep_report
module Stats = Tussle_prelude.Stats

(* Fold every metric of every experiment, collecting the first
   violation detail each metric produces. *)
let each_metric report f =
  List.concat_map
    (fun (e : Sweep_report.exp) ->
      List.filter_map (fun m -> f e m) e.Sweep_report.metrics)
    report.Sweep_report.experiments

let first_some = function [] -> None | d :: _ -> Some d

let report_all : (string * (Sweep_report.t -> string option)) list =
  [
    ( "sweep-samples-match-runs",
      fun r ->
        first_some
          (each_metric r (fun e m ->
               let n = Array.length m.Sweep_report.samples in
               if n <> e.Sweep_report.runs then
                 Some
                   (Printf.sprintf "%s/%s: %d samples for %d runs"
                      e.Sweep_report.id m.Sweep_report.name n
                      e.Sweep_report.runs)
               else if e.Sweep_report.runs <> r.Sweep_report.runs then
                 Some
                   (Printf.sprintf "%s: experiment runs %d <> sweep runs %d"
                      e.Sweep_report.id e.Sweep_report.runs
                      r.Sweep_report.runs)
               else None)) );
    ( "sweep-ci-brackets-mean",
      fun r ->
        first_some
          (each_metric r (fun e m ->
               if
                 m.Sweep_report.ci_lo <= m.Sweep_report.mean
                 && m.Sweep_report.mean <= m.Sweep_report.ci_hi
               then None
               else
                 Some
                   (Printf.sprintf "%s/%s: CI [%g, %g] does not bracket mean %g"
                      e.Sweep_report.id m.Sweep_report.name
                      m.Sweep_report.ci_lo m.Sweep_report.ci_hi
                      m.Sweep_report.mean))) );
    ( "sweep-mean-matches-samples",
      fun r ->
        first_some
          (each_metric r (fun e m ->
               if Array.length m.Sweep_report.samples = 0 then None
               else
                 let actual = Stats.mean m.Sweep_report.samples in
                 let scale = Float.max 1.0 (Float.abs actual) in
                 if Float.abs (actual -. m.Sweep_report.mean) <= 1e-9 *. scale
                 then None
                 else
                   Some
                     (Printf.sprintf
                        "%s/%s: recorded mean %g but samples average to %g"
                        e.Sweep_report.id m.Sweep_report.name
                        m.Sweep_report.mean actual))) );
    ( "sweep-stats-well-formed",
      fun r ->
        first_some
          (each_metric r (fun e m ->
               let bad name v =
                 Some
                   (Printf.sprintf "%s/%s: %s is %g" e.Sweep_report.id
                      m.Sweep_report.name name v)
               in
               if not (Float.is_finite m.Sweep_report.mean) then
                 bad "mean" m.Sweep_report.mean
               else if
                 (not (Float.is_finite m.Sweep_report.stddev))
                 || m.Sweep_report.stddev < 0.0
               then bad "stddev" m.Sweep_report.stddev
               else if
                 Array.exists
                   (fun x -> not (Float.is_finite x))
                   m.Sweep_report.samples
               then
                 Some
                   (Printf.sprintf "%s/%s: non-finite sample"
                      e.Sweep_report.id m.Sweep_report.name)
               else None)) );
  ]

let report_names = List.map fst report_all

let check_report r =
  List.filter_map
    (fun (invariant, f) ->
      Option.map (fun detail -> { invariant; detail }) (f r))
    report_all

(* ---------- search-report invariants ---------- *)

module Search_report = Tussle_obs.Search_report
module Plan = Tussle_fault.Plan

(* One finding's corpus bookkeeping: the file name's hash component
   must match the minimal plan's text, and when the file is on disk it
   must load back to exactly that reproducer. *)
let finding_corpus_violation (f : Search_report.finding) =
  if f.Search_report.corpus_file = "" then None
  else
    let scenario = f.Search_report.scenario in
    let name = Filename.basename f.Search_report.corpus_file in
    match Filename.chop_suffix_opt ~suffix:".plan" name with
    | None ->
      Some (Printf.sprintf "%s: corpus file %S is not a .plan" scenario name)
    | Some stem -> (
      match String.rindex_opt stem '-' with
      | None ->
        Some
          (Printf.sprintf "%s: corpus file %S has no hash suffix" scenario name)
      | Some i -> (
        let hex = String.sub stem (i + 1) (String.length stem - i - 1) in
        match Plan.of_string f.Search_report.minimal_plan with
        | Error e ->
          Some
            (Printf.sprintf "%s: minimal plan does not parse: %s" scenario e)
        | Ok plan -> (
          let canonical = Plan.to_string plan in
          let expect =
            Printf.sprintf "%08x" (Hashtbl.hash canonical land 0xffffffff)
          in
          let prefix = scenario ^ "-" in
          let has_prefix =
            String.length stem >= String.length prefix
            && String.sub stem 0 (String.length prefix) = prefix
          in
          if hex <> expect then
            Some
              (Printf.sprintf
                 "%s: corpus file hash %s but minimal plan hashes to %s"
                 scenario hex expect)
          else if not has_prefix then
            Some
              (Printf.sprintf "%s: corpus file %S not named for its scenario"
                 scenario name)
          else if not (Sys.file_exists f.Search_report.corpus_file) then None
          else
            match Corpus.load f.Search_report.corpus_file with
            | Error e ->
              Some
                (Printf.sprintf "%s: corpus file %S unreadable: %s" scenario
                   name e)
            | Ok e' ->
              if e'.Corpus.scenario <> scenario then
                Some
                  (Printf.sprintf
                     "%s: corpus file %S names scenario %S on disk" scenario
                     name e'.Corpus.scenario)
              else if Plan.to_string e'.Corpus.plan <> canonical then
                Some
                  (Printf.sprintf
                     "%s: corpus file %S holds a different plan on disk"
                     scenario name)
              else None)))

let search_report_all : (string * (Search_report.t -> string option)) list =
  [
    ( "search-budget-accounting",
      fun r ->
        let open Search_report in
        if r.runs < 0 || r.runs > r.budget then
          Some (Printf.sprintf "%d runs for budget %d" r.runs r.budget)
        else if r.backend = "mutate" && r.runs <> r.budget then
          Some
            (Printf.sprintf
               "mutate backend must spend its whole budget: %d of %d" r.runs
               r.budget)
        else if r.backend = "exhaust" && r.runs <> min r.budget r.space then
          Some
            (Printf.sprintf
               "exhaust backend ran %d plans; expected min(budget %d, space %d)"
               r.runs r.budget r.space)
        else if
          r.certified
          && (r.backend <> "exhaust" || r.runs <> r.space || r.findings <> [])
        then Some "certification requires an exhausted box with no findings"
        else None );
    ( "search-coverage-monotone",
      fun r ->
        let open Search_report in
        let rec walk prev = function
          | [] -> None
          | n :: rest ->
            if n < prev then
              Some
                (Printf.sprintf "coverage frontier shrank: %d -> %d" prev n)
            else walk n rest
        in
        match walk 0 r.frontier with
        | Some d -> Some d
        | None ->
          let final = frontier_size r in
          if final > r.runs then
            Some
              (Printf.sprintf "%d distinct signatures from only %d runs" final
                 r.runs)
          else if r.runs > 0 && final = 0 then
            Some (Printf.sprintf "%d runs grew no coverage at all" r.runs)
          else None );
    ( "search-corpus-hashes",
      fun r ->
        first_some
          (List.filter_map finding_corpus_violation r.Search_report.findings)
    );
    ( "search-corpus-additions-counted",
      fun r ->
        let open Search_report in
        let persisted =
          List.length
            (List.filter (fun f -> f.corpus_file <> "") r.findings)
        in
        if r.corpus_added < 0 || r.corpus_added > persisted then
          Some
            (Printf.sprintf
               "corpus_added=%d but %d findings carry a corpus file"
               r.corpus_added persisted)
        else None );
  ]

let search_report_names = List.map fst search_report_all

let check_search_report r =
  List.filter_map
    (fun (invariant, f) ->
      Option.map (fun detail -> { invariant; detail }) (f r))
    search_report_all
