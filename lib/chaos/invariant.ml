module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Link = Tussle_netsim.Link

type transfer_state = Completed | Abandoned | Active

type obs = {
  injected : int;
  delivered : int;
  dropped : int;
  in_flight : int;
  engine_pending : int;
  clock_start : float;
  clock_end : float;
  drops_by_reason : (string * int) list;
  link_fault_drops : int;
  link_corrupted : int;
  transfers : transfer_state list;
}

(* Fold over the distinct physical link objects (an undirected label
   shared both ways must be counted once — same dedup Inject uses). *)
let fold_links links ~init ~f =
  let seen = ref [] in
  Graph.fold_edges links ~init ~f:(fun acc _ _ l ->
      if List.memq l !seen then acc
      else begin
        seen := l :: !seen;
        f acc l
      end)

let observe ?(transfers = []) ~clock_start engine net =
  let links = Net.links net in
  {
    injected = Net.injected_count net;
    delivered = Net.delivered_count net;
    dropped = Net.lost_count net;
    in_flight = Net.in_flight net;
    engine_pending = Engine.pending engine;
    clock_start;
    clock_end = Engine.now engine;
    drops_by_reason = Net.losses_by_reason net;
    link_fault_drops =
      fold_links links ~init:0 ~f:(fun acc l -> acc + Link.fault_drops l);
    link_corrupted =
      fold_links links ~init:0 ~f:(fun acc l -> acc + Link.corrupted_count l);
    transfers;
  }

type violation = { invariant : string; detail : string }

let reason_count o label =
  Option.value ~default:0 (List.assoc_opt label o.drops_by_reason)

(* The registry.  Each invariant returns [Some detail] on violation.
   This list is the intended home for future correctness checks: a new
   simulation-wide property becomes one entry here and every chaos
   sweep, corpus replay, and planted-violation test starts enforcing
   it. *)
let all : (string * (obs -> string option)) list =
  [
    ( "packet-conservation",
      fun o ->
        if o.injected = o.delivered + o.dropped + o.in_flight then None
        else
          Some
            (Printf.sprintf
               "injected %d <> delivered %d + dropped %d + in-flight %d"
               o.injected o.delivered o.dropped o.in_flight) );
    ( "engine-drained",
      fun o ->
        if o.engine_pending = 0 then None
        else Some (Printf.sprintf "%d events still queued" o.engine_pending) );
    ( "monotone-clock",
      fun o ->
        if o.clock_end >= o.clock_start then None
        else
          Some
            (Printf.sprintf "clock ran backwards: %g -> %g" o.clock_start
               o.clock_end) );
    ( "drop-accounting",
      fun o ->
        let by_reason =
          List.fold_left (fun acc (_, n) -> acc + n) 0 o.drops_by_reason
        in
        let attributed =
          reason_count o "link-down" + reason_count o "fault-loss"
        in
        let corrupted = reason_count o "corrupted" in
        if by_reason <> o.dropped then
          Some
            (Printf.sprintf "per-reason drops %d <> lost packets %d" by_reason
               o.dropped)
        else if o.link_fault_drops <> attributed then
          Some
            (Printf.sprintf
               "links counted %d fault drops, net attributed %d"
               o.link_fault_drops attributed)
        else if o.link_corrupted <> corrupted then
          Some
            (Printf.sprintf "links corrupted %d packets, net attributed %d"
               o.link_corrupted corrupted)
        else None );
    ( "no-hung-transfer",
      fun o ->
        match List.filter (fun s -> s = Active) o.transfers with
        | [] -> None
        | stuck ->
          Some
            (Printf.sprintf "%d transfer(s) neither completed nor abandoned"
               (List.length stuck)) );
  ]

let names = List.map fst all

let check o =
  List.filter_map
    (fun (invariant, f) ->
      Option.map (fun detail -> { invariant; detail }) (f o))
    all

let violation_string v = Printf.sprintf "%s: %s" v.invariant v.detail

(* ---------- sweep-report invariants ---------- *)

module Sweep_report = Tussle_obs.Sweep_report
module Stats = Tussle_prelude.Stats

(* Fold every metric of every experiment, collecting the first
   violation detail each metric produces. *)
let each_metric report f =
  List.concat_map
    (fun (e : Sweep_report.exp) ->
      List.filter_map (fun m -> f e m) e.Sweep_report.metrics)
    report.Sweep_report.experiments

let first_some = function [] -> None | d :: _ -> Some d

let report_all : (string * (Sweep_report.t -> string option)) list =
  [
    ( "sweep-samples-match-runs",
      fun r ->
        first_some
          (each_metric r (fun e m ->
               let n = Array.length m.Sweep_report.samples in
               if n <> e.Sweep_report.runs then
                 Some
                   (Printf.sprintf "%s/%s: %d samples for %d runs"
                      e.Sweep_report.id m.Sweep_report.name n
                      e.Sweep_report.runs)
               else if e.Sweep_report.runs <> r.Sweep_report.runs then
                 Some
                   (Printf.sprintf "%s: experiment runs %d <> sweep runs %d"
                      e.Sweep_report.id e.Sweep_report.runs
                      r.Sweep_report.runs)
               else None)) );
    ( "sweep-ci-brackets-mean",
      fun r ->
        first_some
          (each_metric r (fun e m ->
               if
                 m.Sweep_report.ci_lo <= m.Sweep_report.mean
                 && m.Sweep_report.mean <= m.Sweep_report.ci_hi
               then None
               else
                 Some
                   (Printf.sprintf "%s/%s: CI [%g, %g] does not bracket mean %g"
                      e.Sweep_report.id m.Sweep_report.name
                      m.Sweep_report.ci_lo m.Sweep_report.ci_hi
                      m.Sweep_report.mean))) );
    ( "sweep-mean-matches-samples",
      fun r ->
        first_some
          (each_metric r (fun e m ->
               if Array.length m.Sweep_report.samples = 0 then None
               else
                 let actual = Stats.mean m.Sweep_report.samples in
                 let scale = Float.max 1.0 (Float.abs actual) in
                 if Float.abs (actual -. m.Sweep_report.mean) <= 1e-9 *. scale
                 then None
                 else
                   Some
                     (Printf.sprintf
                        "%s/%s: recorded mean %g but samples average to %g"
                        e.Sweep_report.id m.Sweep_report.name
                        m.Sweep_report.mean actual))) );
    ( "sweep-stats-well-formed",
      fun r ->
        first_some
          (each_metric r (fun e m ->
               let bad name v =
                 Some
                   (Printf.sprintf "%s/%s: %s is %g" e.Sweep_report.id
                      m.Sweep_report.name name v)
               in
               if not (Float.is_finite m.Sweep_report.mean) then
                 bad "mean" m.Sweep_report.mean
               else if
                 (not (Float.is_finite m.Sweep_report.stddev))
                 || m.Sweep_report.stddev < 0.0
               then bad "stddev" m.Sweep_report.stddev
               else if
                 Array.exists
                   (fun x -> not (Float.is_finite x))
                   m.Sweep_report.samples
               then
                 Some
                   (Printf.sprintf "%s/%s: non-finite sample"
                      e.Sweep_report.id m.Sweep_report.name)
               else None)) );
  ]

let report_names = List.map fst report_all

let check_report r =
  List.filter_map
    (fun (invariant, f) ->
      Option.map (fun detail -> { invariant; detail }) (f r))
    report_all
