module Plan = Tussle_fault.Plan

type entry = { scenario : string; seed : int; plan : Plan.t }

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

(* The hash pins the filename to the plan's exact text, so re-saving
   the same reproducer is idempotent and distinct shrinks of the same
   scenario/seed never clobber each other. *)
let filename e =
  Printf.sprintf "%s-%d-%08x.plan" e.scenario e.seed
    (Hashtbl.hash (Plan.to_string e.plan) land 0xffffffff)

let to_file_string e =
  Printf.sprintf
    "# chaos regression reproducer — replayed by scripts/ci.sh\n\
     scenario: %s\n\
     seed: %d\n\
     %s"
    e.scenario e.seed (Plan.to_string e.plan)

let parse_header ~key line =
  let prefix = key ^ ":" in
  let line = String.trim line in
  if String.length line > String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (String.trim
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))
  else None

let of_file_string ?known s =
  let lines = String.split_on_char '\n' s in
  let scenario = ref None and seed = ref None and body = Buffer.create 256 in
  List.iter
    (fun line ->
      match parse_header ~key:"scenario" line with
      | Some v -> scenario := Some v
      | None -> (
        match parse_header ~key:"seed" line with
        | Some v -> seed := Some v
        | None ->
          Buffer.add_string body line;
          Buffer.add_char body '\n'))
    lines;
  match (!scenario, !seed) with
  | None, _ -> Error "missing 'scenario:' header"
  | _, None -> Error "missing 'seed:' header"
  | Some scenario, Some seed -> (
    match int_of_string_opt seed with
    | None -> Error (Printf.sprintf "bad seed %S" seed)
    | Some seed -> (
      match Plan.of_string (Buffer.contents body) with
      | Error e -> Error e
      | Ok plan -> (
        match Plan.validate plan with
        | exception Invalid_argument m -> Error ("invalid plan: " ^ m)
        | () -> (
          match known with
          | Some names when not (List.mem scenario names) ->
            Error
              (Printf.sprintf "unknown scenario %S (known: %s)" scenario
                 (String.concat ", " (List.sort compare names)))
          | _ -> Ok { scenario; seed; plan }))))

let load ?known path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_file_string ?known s
  | exception Sys_error m -> Error m

let load_dir ?known dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    let names = Array.to_list names in
    let plans =
      List.filter (fun n -> Filename.check_suffix n ".plan") names
    in
    List.map
      (fun n ->
        let path = Filename.concat dir n in
        (path, load ?known path))
      (List.sort compare plans)

(* Two entries are the same reproducer when scenario and plan text
   agree, whatever seed each was found with: the plan is what replays
   the bug, the seed is only the draw that exposed it first. *)
let find_duplicate ~dir e =
  let plan = Plan.to_string e.plan in
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".plan")
    |> List.sort compare
    |> List.find_map (fun n ->
           let path = Filename.concat dir n in
           match load path with
           | Ok e' when e'.scenario = e.scenario && Plan.to_string e'.plan = plan
             ->
             Some path
           | _ -> None)

let save ~dir e =
  mkdirs dir;
  match find_duplicate ~dir e with
  | Some path -> path
  | None ->
    let path = Filename.concat dir (filename e) in
    let oc = open_out path in
    output_string oc (to_file_string e);
    close_out oc;
    path
