module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Topology = Tussle_netsim.Topology
module Traffic = Tussle_netsim.Traffic
module Transport = Tussle_netsim.Transport
module Linkstate = Tussle_routing.Linkstate
module Selfheal = Tussle_routing.Selfheal
module Plan = Tussle_fault.Plan
module Inject = Tussle_fault.Inject

type t = {
  name : string;
  links : (int * int) list;
  horizon : float;
  run : seed:int -> plan:Plan.t -> Invariant.obs;
}

(* Every scenario is a hang guard away from an infinite loop, so each
   drives its engine to a far horizon instead of to quiescence: a
   buggy event source then shows up as an "engine-drained" violation
   rather than a wedged sweep. *)
let guard_horizon = 600.0

let transfer_status conn =
  match Transport.status conn with
  | Transport.Completed -> Invariant.Completed
  | Transport.Abandoned -> Invariant.Abandoned
  | Transport.Active -> Invariant.Active

(* A closed-loop transfer over a slow 4-node line: retransmission,
   backoff and the give-up budget under arbitrary link faults. *)
let line_transfer =
  let edge = { Topology.latency = 0.005; bandwidth_bps = 2e6 } in
  let run ~seed ~plan =
    let net =
      Net.create
        (Topology.to_links (Topology.line ~edge 4))
        (fun ~node ~target _ ->
          if target > node then Some (node + 1)
          else if target < node then Some (node - 1)
          else None)
    in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    Inject.install ~seed ~plan engine net;
    let gen = Traffic.create (Rng.create (seed + 1)) in
    let conn =
      Transport.start ~rto_backoff:2.0 ~rto_max:2.0 ~rto_jitter:0.1
        ~jitter_rng:(Rng.create (seed + 2))
        ~max_retries:10 engine net gen ~src:0 ~dst:3 ~total_packets:120
    in
    Engine.run ~until:guard_horizon engine;
    Invariant.observe ~transfers:[ transfer_status conn ]
      ~fault_transitions:(Plan.transitions plan) ~clock_start engine net
  in
  { name = "line-transfer"; links = [ (0, 1); (1, 2); (2, 3) ];
    horizon = 10.0; run }

(* Open-loop constant-rate traffic over a ring with a self-healing
   control plane: failover, restoration, and flapping under arbitrary
   faults, with hello ticks bounded so the engine drains. *)
let ring_selfheal =
  let edge = { Topology.latency = 0.005; bandwidth_bps = 1e7 } in
  let run ~seed ~plan =
    let net =
      Net.create
        (Topology.to_links (Topology.ring ~edge 6))
        (fun ~node:_ ~target:_ _ -> None)
    in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    let heal = Selfheal.attach ~until:12.0 engine net in
    Inject.install ~seed ~plan engine net;
    let gen = Traffic.create (Rng.create (seed + 1)) in
    for k = 0 to 79 do
      let at = 0.2 +. (0.1 *. float_of_int k) in
      ignore
        (Engine.schedule engine at (fun engine ->
             Net.inject net engine
               (Traffic.next_packet gen ~src:0 ~dst:3
                  ~created:(Engine.now engine) ())))
    done;
    Engine.run ~until:guard_horizon engine;
    Invariant.observe ~reconvergences:(Selfheal.reconvergences heal)
      ~fault_transitions:(Plan.transitions plan) ~clock_start engine net
  in
  { name = "ring-selfheal";
    links = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ];
    horizon = 10.0; run }

(* The same ring and traffic, healed by the data-plane-verified control
   plane: adjacency probing, transit probes, quarantine and flap
   damping all run under arbitrary fault plans — including the gray /
   unidirectional / flap / blackhole episodes hello-only detection is
   structurally blind to.  No covert budget is declared: a random plan
   may gray out every path, so the only universal claim is the
   accounting one the invariant always makes. *)
let ring_verified =
  let edge = { Topology.latency = 0.005; bandwidth_bps = 1e7 } in
  let run ~seed ~plan =
    let net =
      Net.create
        (Topology.to_links (Topology.ring ~edge 6))
        (fun ~node:_ ~target:_ _ -> None)
    in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    let heal =
      Selfheal.attach ~config:Selfheal.verified_config ~until:12.0 engine net
    in
    Inject.install ~seed ~plan engine net;
    let gen = Traffic.create (Rng.create (seed + 1)) in
    for k = 0 to 79 do
      let at = 0.2 +. (0.1 *. float_of_int k) in
      ignore
        (Engine.schedule engine at (fun engine ->
             Net.inject net engine
               (Traffic.next_packet gen ~src:0 ~dst:3
                  ~created:(Engine.now engine) ())))
    done;
    Engine.run ~until:guard_horizon engine;
    Invariant.observe ~reconvergences:(Selfheal.reconvergences heal)
      ~fault_transitions:(Plan.transitions plan) ~clock_start engine net
  in
  { name = "ring-verified";
    links = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ];
    horizon = 10.0; run }

(* Two crossing open-loop flows on a 3x3 grid with static tables:
   drops must stay exactly attributed however the plan carves up the
   mesh. *)
let grid_static =
  let run ~seed ~plan =
    let links = Topology.to_links (Topology.grid 3 3) in
    let table = Linkstate.compute_live links ~metric:`Hops in
    let net = Net.create links (Linkstate.forwarding table) in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    Inject.install ~seed ~plan engine net;
    let gen = Traffic.create (Rng.create (seed + 1)) in
    let flow ~src ~dst ~start =
      for k = 0 to 39 do
        let at = start +. (0.15 *. float_of_int k) in
        ignore
          (Engine.schedule engine at (fun engine ->
               Net.inject net engine
                 (Traffic.next_packet gen ~src ~dst
                    ~created:(Engine.now engine) ())))
      done
    in
    flow ~src:0 ~dst:8 ~start:0.1;
    flow ~src:2 ~dst:6 ~start:0.175;
    Engine.run ~until:guard_horizon engine;
    Invariant.observe ~fault_transitions:(Plan.transitions plan) ~clock_start
      engine net
  in
  { name = "grid-static";
    links =
      [ (0, 1); (1, 2); (3, 4); (4, 5); (6, 7); (7, 8);
        (0, 3); (3, 6); (1, 4); (4, 7); (2, 5); (5, 8) ];
    horizon = 8.0; run }

let all = [ line_transfer; ring_selfheal; ring_verified; grid_static ]

let find name = List.find_opt (fun s -> s.name = name) all
