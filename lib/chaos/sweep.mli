(** The chaos sweep: N seeded random fault plans vs. the invariants.

    Each run index deterministically picks a scenario (round-robin),
    draws a short random plan over that scenario's links, simulates it,
    and checks the whole {!Invariant} registry.  Derivation depends
    only on [(seed, index)], and the runs are fanned out with
    order-preserving {!Tussle_prelude.Pool.map} — so a sweep's result
    list (and anything rendered from it) is byte-identical for any
    [--domains] count. *)

type run = {
  index : int;
  scenario : string;
  seed : int;  (** per-run injection/traffic seed *)
  episodes : int;
  plan : Tussle_fault.Plan.t;
  violations : Invariant.violation list;  (** [[]] = clean run *)
}

val run_one : master_seed:int -> int -> run
(** One sweep run by index: derive scenario + plan + seed, simulate,
    check the registry.  [run_sweep] is [Pool.map] over this. *)

val run_sweep : ?domains:int -> seed:int -> runs:int -> unit -> run list
(** Run [runs] chaos runs derived from master [seed], in index order.
    Raises [Invalid_argument] if [runs < 1]. *)

val failures : run list -> run list
(** The runs that violated at least one invariant. *)

val still_fails : Scenario.t -> seed:int -> Tussle_fault.Plan.t -> bool
(** Failure oracle: does simulating the scenario under this plan
    violate any invariant?  This is what {!shrink_run} minimizes
    against; exposed so tests can shrink plans for scenarios of their
    own (e.g. deliberately planted violations). *)

val shrink_run : run -> Tussle_fault.Plan.t
(** Delta-debug a failing run's plan to a 1-minimal reproducer
    (re-simulating the scenario with the run's own seed as oracle). *)

val replay : Corpus.entry -> (Invariant.violation list, string) result
(** Re-run a corpus entry against its scenario; [Ok []] means the
    once-failing reproducer now passes every invariant.  [Error] if
    the scenario name is unknown. *)
