(** Chaos scenario checkers.

    A scenario is a small, self-contained simulation that the chaos
    sweep can subject to an arbitrary fault plan: it builds a fresh
    network and engine, installs the plan, drives deterministic
    traffic from [seed], runs to a guard horizon, and returns the
    {!Invariant.obs} ledger for the registry to judge.  Scenarios
    never assert anything themselves — "correct under faults" is
    defined once, by the invariant registry, not per scenario. *)

type t = {
  name : string;  (** stable id; used in corpus files and CLI output *)
  links : (int * int) list;
      (** the node pairs a random plan may target ([Plan.random]'s
          [links] argument) — exactly the scenario's physical links *)
  horizon : float;
      (** the window within which random fault episodes are drawn;
          well before the run's guard horizon so the engine can
          drain *)
  run : seed:int -> plan:Tussle_fault.Plan.t -> Invariant.obs;
}

val line_transfer : t
(** [line-transfer]: a retrying {!Tussle_netsim.Transport} transfer
    over a 4-node line — exercises retransmission, backoff and the
    give-up budget under faults. *)

val ring_selfheal : t
(** [ring-selfheal]: open-loop constant-rate traffic over a 6-ring
    with a {!Tussle_routing.Selfheal} control plane attached —
    exercises failure detection, re-convergence and flapping. *)

val ring_verified : t
(** [ring-verified]: the same ring and traffic healed by
    {!Tussle_routing.Selfheal.verified_config} — data-plane adjacency
    probing, transit probes with quarantine, and flap damping, under
    the full extended fault grammar. *)

val grid_static : t
(** [grid-static]: two crossing open-loop flows on a 3x3 grid with
    static link-state tables — exercises drop attribution when the
    mesh is carved up with no healing at all. *)

val all : t list

val find : string -> t option
