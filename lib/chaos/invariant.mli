(** The simulation invariant registry.

    An invariant is a property that must hold at the end of {e every}
    run, whatever faults were injected: the simulator may drop, delay
    and abandon, but it may never lose track of a packet, leave the
    engine wedged, or let a transfer hang.  The chaos sweep validates
    the whole registry after each of its seeded fault plans; a
    violation is a simulator bug by definition, and the failing plan is
    shrunk ({!Shrink}) and persisted ({!Corpus}) as a regression.

    This registry is the intended home for future correctness checks:
    add an entry to {!all} and every sweep, replay, and test starts
    enforcing it. *)

type transfer_state = Completed | Abandoned | Active

type obs = {
  injected : int;  (** packets offered via [Net.inject] *)
  delivered : int;
  dropped : int;
  in_flight : int;  (** transits never completed *)
  engine_pending : int;  (** events still queued after the run *)
  clock_start : float;
  clock_end : float;
  drops_by_reason : (string * int) list;  (** [Net.losses_by_reason] *)
  link_fault_drops : int;  (** summed over distinct physical links *)
  link_corrupted : int;
  link_gray_drops : int;  (** covert drops the links themselves counted *)
  transfers : transfer_state list;  (** terminal status of each transport *)
  engine_high_water : int;  (** [Engine.queue_depth_high_water] *)
  reconvergences : int;  (** self-healing recomputes; 0 without a control plane *)
  covert_budget : int option;
      (** the scenario's claim, if it makes one: covert drops
          (gray-loss + blackholed) must not exceed this.  [None] (the
          default) asserts nothing — a random plan may legitimately
          gray out every path. *)
  fault_transitions : int option;
      (** [Plan.transitions] of the installed plan, when the scenario
          declares it: the normalizer for the reconvergence bound.
          [None] asserts nothing. *)
}
(** Everything the invariants inspect, captured after a run.
    [engine_high_water] is not checked by any invariant; it feeds the
    {!Signature} behavior fingerprint the adversarial search uses as
    its coverage signal. *)

val observe :
  ?transfers:transfer_state list ->
  ?reconvergences:int ->
  ?covert_budget:int ->
  ?fault_transitions:int ->
  clock_start:float ->
  Tussle_netsim.Engine.t ->
  Tussle_netsim.Net.t ->
  obs
(** Snapshot the ledgers of a finished run.  [transfers] carries the
    terminal status of any transport connections the scenario drove;
    [reconvergences] (default 0) the self-healing control plane's
    recompute count, if the scenario ran one.  [covert_budget] and
    [fault_transitions] arm the no-silent-blackhole budget check and
    the damping-bounds-reconvergence check respectively; omitted, those
    checks reduce to pure accounting (or nothing). *)

type violation = { invariant : string; detail : string }

val all : (string * (obs -> string option)) list
(** The registry, in check order: packet conservation
    ([injected = delivered + dropped + in-flight]), engine drained,
    monotone clock, drop accounting (per-reason sums match totals and
    the links' own fault counters), no hung transfer,
    no-silent-blackhole (every link-counted gray drop is attributed as
    ["gray-loss"], and covert drops stay within [covert_budget] when
    one is declared), no-forwarding-loop (a ttl-exceeded drop with
    zero reconvergences means static tables looped), and
    damping-bounds-reconvergence ([reconvergences <= 4t + 4] against
    the declared [fault_transitions]). *)

val names : string list

val check : obs -> violation list
(** Run every registered invariant; [[]] means the run was clean. *)

val violation_string : violation -> string

(** {2 Sweep-report invariants}

    A second registry operating on the statistical artifact rather
    than a simulation run: every [tussle.sweep-report/1] the sweep
    driver produces must be internally consistent before it is
    written or trusted.  Same contract as {!all} — an entry returning
    [Some detail] is a bug in the statistical layer by definition. *)

val report_all :
  (string * (Tussle_obs.Sweep_report.t -> string option)) list
(** In check order: every metric's sample count matches its
    experiment's (and the sweep's) run count; each confidence interval
    brackets its recorded mean; the recorded mean agrees with the mean
    of the stored samples (relative 1e-9); means/stddevs/samples are
    finite with non-negative stddev. *)

val report_names : string list

val check_report : Tussle_obs.Sweep_report.t -> violation list
(** Run every report invariant; [[]] means the artifact is
    consistent. *)

(** {2 Search-report invariants}

    The same discipline for the [tussle.search-report/1] artifact the
    adversarial search emits: budget accounting, coverage-frontier
    monotonicity, and corpus bookkeeping are registry entries here,
    not bespoke asserts in the search driver. *)

val search_report_all :
  (string * (Tussle_obs.Search_report.t -> string option)) list
(** In check order: budget accounting ([runs <= budget]; the mutate
    backend spends its whole budget; the exhaust backend runs exactly
    [min budget space]; certification requires an exhausted box with
    no findings); the coverage frontier is non-negative, non-decreasing
    and bounded by [runs] (and non-empty coverage for a non-empty run);
    every persisted finding's corpus file name carries the hash of its
    minimal plan text and — when present on disk — loads back to
    exactly that reproducer; [corpus_added] never exceeds the findings
    that carry a corpus file. *)

val search_report_names : string list

val check_search_report : Tussle_obs.Search_report.t -> violation list
(** Run every search-report invariant; [[]] means the artifact is
    consistent. *)
