(** Behavior signatures: the coverage signal for adversarial search.

    A signature is a coarse canonical fingerprint of one run's
    {!Invariant.obs} ledger — per-reason drop profile (log2-bucketed),
    transfer terminal-state counts, self-healing reconvergence count,
    engine queue high-water, and leaked in-flight packets.  The
    coverage-guided mutator admits a mutant into its live corpus
    exactly when its signature is unseen, so the search spends its
    budget on plans that make the simulator {e behave} differently,
    not on plans that merely {e look} different. *)

val bucket : int -> int
(** log2 bucket index: 0 for 0, 1 for 1, 2 for 2, 3 for 3-4,
    4 for 5-8, ... *)

val of_obs : Invariant.obs -> string
(** Canonical signature; equal ledgers yield equal strings, whatever
    order [drops_by_reason] arrived in. *)
