(** The replayable chaos regression corpus.

    Every shrunk reproducer is persisted as a small text file —
    scenario name, injection seed, and the minimal plan in
    {!Tussle_fault.Plan.to_string} format — under [chaos/corpus/].
    CI replays the whole directory on every run, so a bug found once
    by the random sweep is guarded forever by a deterministic test. *)

type entry = {
  scenario : string;  (** {!Scenario.t} name the plan fails against *)
  seed : int;  (** injection/traffic seed the failure was found with *)
  plan : Tussle_fault.Plan.t;
}

val filename : entry -> string
(** [scenario-seed-<hash>.plan]; the hash covers the plan text so
    saving the same reproducer twice is idempotent. *)

val save : dir:string -> entry -> string
(** Write the entry under [dir] (created if missing, like mkdir -p)
    and return the file path. *)

val load : string -> (entry, string) result
(** Parse one corpus file.  The plan is validated; [Error] carries a
    human-readable reason (missing header, bad seed, malformed or
    invalid plan, unreadable file). *)

val load_dir : string -> (string * (entry, string) result) list
(** All [*.plan] files under a directory in sorted filename order
    (deterministic replay order); [[]] if the directory is missing. *)
