(** The replayable chaos regression corpus.

    Every shrunk reproducer is persisted as a small text file —
    scenario name, injection seed, and the minimal plan in
    {!Tussle_fault.Plan.to_string} format — under [chaos/corpus/].
    CI replays the whole directory on every run, so a bug found once
    by the random sweep or the adversarial search is guarded forever
    by a deterministic test. *)

type entry = {
  scenario : string;  (** {!Scenario.t} name the plan fails against *)
  seed : int;  (** injection/traffic seed the failure was found with *)
  plan : Tussle_fault.Plan.t;
}

val filename : entry -> string
(** [scenario-seed-<hash>.plan]; the hash covers the plan text so
    saving the same reproducer twice is idempotent. *)

val find_duplicate : dir:string -> entry -> string option
(** Path of an existing corpus file holding the same reproducer —
    same scenario and identical plan text, {e regardless of seed} —
    or [None].  [None] as well when [dir] does not exist. *)

val save : dir:string -> entry -> string
(** Write the entry under [dir] (created if missing, like mkdir -p)
    and return the file path.  Deduplicated by {!find_duplicate}: if
    the same scenario/plan reproducer is already on disk (even under a
    different seed), the existing file's path is returned and nothing
    is written — a re-found violation must not create a second file. *)

val load : ?known:string list -> string -> (entry, string) result
(** Parse one corpus file.  The plan is validated; [Error] carries a
    human-readable reason (missing header, bad seed, malformed or
    invalid plan, unreadable file).  When [known] is given, an entry
    whose scenario name is not in the list is rejected with a clean
    ["unknown scenario ..."] error instead of surviving to raise
    somewhere downstream. *)

val load_dir :
  ?known:string list -> string -> (string * (entry, string) result) list
(** All [*.plan] files under a directory in sorted filename order
    (deterministic replay order); [[]] if the directory is missing.
    [known] is applied to each entry as in {!load}. *)
