module Graph = Tussle_prelude.Graph
module Topology = Tussle_netsim.Topology
module Link = Tussle_netsim.Link

type t = {
  n : int;
  dist : float array array; (* dist.(src).(dst) *)
  pred : int array array; (* pred.(src).(dst) = predecessor on path from src *)
  costs : (int * int * float) list;
}

(* All-pairs shortest paths over a graph whose edges are already plain
   costs.  An [infinity] cost masks an edge completely: it can never
   relax a distance, so a node reachable only through masked edges
   stays at [dist = infinity] — unreachable, exactly like a withdrawn
   link. *)
let compute_costs g =
  let n = Graph.node_count g in
  let dist = Array.make n [||] and pred = Array.make n [||] in
  for src = 0 to n - 1 do
    let d, p = Graph.dijkstra g ~weight:Fun.id ~source:src in
    dist.(src) <- d;
    pred.(src) <- p
  done;
  let costs =
    Graph.fold_edges g ~init:[] ~f:(fun acc u v w ->
        if Float.is_finite w then (u, v, w) :: acc else acc)
    |> List.rev
  in
  { n; dist; pred; costs }

let compute g ~metric =
  let weight (e : Topology.edge) =
    match metric with `Latency -> e.Topology.latency | `Hops -> 1.0
  in
  compute_costs (Graph.map_edges g weight)

let norm_pair (u, v) = if u <= v then (u, v) else (v, u)

let compute_live ?(down = []) links ~metric =
  let dead = List.map norm_pair down in
  let n = Graph.node_count links in
  let g = Graph.create n in
  Graph.iter_edges links (fun u v l ->
      let cost =
        if List.mem (norm_pair (u, v)) dead then infinity
        else match metric with `Latency -> Link.latency l | `Hops -> 1.0
      in
      Graph.add_edge g u v cost);
  compute_costs g

let check t node name =
  if node < 0 || node >= t.n then invalid_arg (name ^ ": node out of range")

let path t ~src ~dst =
  check t src "Linkstate.path";
  check t dst "Linkstate.path";
  if t.dist.(src).(dst) = infinity then None
  else begin
    let rec build node acc =
      if node = src then src :: acc else build t.pred.(src).(node) (node :: acc)
    in
    Some (build dst [])
  end

let next_hop t ~node ~dst =
  check t node "Linkstate.next_hop";
  check t dst "Linkstate.next_hop";
  if node = dst then None
  else
    match path t ~src:node ~dst with
    | Some (_ :: hop :: _) -> Some hop
    | Some _ | None -> None

let distance t ~src ~dst =
  check t src "Linkstate.distance";
  check t dst "Linkstate.distance";
  let d = t.dist.(src).(dst) in
  if d = infinity then None else Some d

let forwarding t ~node ~target packet =
  ignore packet;
  next_hop t ~node ~dst:target

let visible_link_costs t = t.costs

let node_count t = t.n
