(** Link-state routing (OSPF-like): every node floods its link costs,
    every node computes shortest paths over the full map.

    The tussle-relevant property (§IV-C): a link-state protocol "requires
    that everyone export his link costs" — internal choices are fully
    visible, and there is no per-neighbour policy lever.  The routing
    visibility experiment contrasts this with path-vector. *)

type t

val compute :
  Tussle_netsim.Topology.edge Tussle_prelude.Graph.t ->
  metric:[ `Latency | `Hops ] ->
  t
(** Run Dijkstra from every node over the flooded map. *)

val compute_live :
  ?down:(int * int) list ->
  Tussle_netsim.Link.t Tussle_prelude.Graph.t ->
  metric:[ `Latency | `Hops ] ->
  t
(** Recompute the map from a {e live} link graph, withdrawing every
    link between a pair in [down] (either orientation) — the
    incremental step a self-healing control plane runs after failure
    detection ({!Selfheal}).  Withdrawn links are absent from
    {!visible_link_costs}, and destinations reachable only through
    them become unreachable ([next_hop = None]).  [down] reflects what
    the control plane has {e detected}, not ground truth: a link that
    died a moment ago but has not yet missed enough hellos is still
    routed over. *)

val next_hop : t -> node:int -> dst:int -> int option
(** Forwarding table lookup. *)

val distance : t -> src:int -> dst:int -> float option

val path : t -> src:int -> dst:int -> int list option
(** Full path [src; ...; dst]. *)

val forwarding : t -> Tussle_netsim.Net.forwarding
(** Adapt to the simulator's forwarding signature ([target]-based, so
    loose source routes work unchanged). *)

val visible_link_costs : t -> (int * int * float) list
(** Every (u, v, cost) in the flooded database — what {e any} participant
    (or competitor) can read.  This is the protocol's information
    exposure. *)

val node_count : t -> int
