module Graph = Tussle_prelude.Graph
module Topology = Tussle_netsim.Topology

let measured_latency ls g ~src ~dst =
  if src = dst then Some 0.0
  else
    match Linkstate.path ls ~src ~dst with
    | None -> None
    | Some path ->
      let rec sum acc = function
        | a :: (b :: _ as rest) -> begin
          match Graph.find_edge g a b with
          | Some e -> sum (acc +. e.Topology.latency) rest
          | None -> acc (* inconsistent table; treat as measured so far *)
        end
        | _ -> acc
      in
      Some (sum 0.0 path)

let best_relay ~latency ~candidates ~src ~dst =
  let consider best r =
    if r = src || r = dst then best
    else
      match (latency src r, latency r dst) with
      | Some d1, Some d2 -> begin
        let total = d1 +. d2 in
        match best with
        | Some (_, cur) when cur <= total -> best
        | Some _ | None -> Some (r, total)
      end
      | _, _ -> best
  in
  List.fold_left consider None candidates

let latency_improvement ~latency ~candidates ~src ~dst =
  match (latency src dst, best_relay ~latency ~candidates ~src ~dst) with
  | Some direct, Some (_, relayed) -> Some (direct -. relayed)
  | _, _ -> None

let reachable_via ~can_reach ~candidates ~src ~dst =
  let ordered = List.sort compare candidates in
  List.find_opt
    (fun r -> r <> src && r <> dst && can_reach src r && can_reach r dst)
    ordered

let path_alive ls links ~src ~dst =
  if src = dst then true
  else
    match Linkstate.path ls ~src ~dst with
    | None -> false
    | Some path ->
      let rec alive = function
        | a :: (b :: _ as rest) -> begin
          match Graph.find_edge links a b with
          | Some l -> Tussle_netsim.Link.is_up l && alive rest
          | None -> false
        end
        | _ -> true
      in
      alive path

let failover_waypoints ~can_reach ~candidates ~src ~dst =
  if can_reach src dst then Some []
  else
    match reachable_via ~can_reach ~candidates ~src ~dst with
    | Some r -> Some [ r ]
    | None -> None

let recovery_ratio ~can_reach ~candidates ~pairs =
  let blocked = List.filter (fun (src, dst) -> not (can_reach src dst)) pairs in
  match blocked with
  | [] -> 1.0
  | _ ->
    let recovered =
      List.filter
        (fun (src, dst) ->
          Option.is_some (reachable_via ~can_reach ~candidates ~src ~dst))
        blocked
    in
    float_of_int (List.length recovered) /. float_of_int (List.length blocked)
