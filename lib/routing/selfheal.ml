module Graph = Tussle_prelude.Graph
module Rng = Tussle_prelude.Rng
module Flight = Tussle_obs.Flight
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Link = Tussle_netsim.Link
module Packet = Tussle_netsim.Packet

type data_plane = {
  probe_interval : float;
  probes_per_sample : int;
  window : int;
  down_ratio : float;
  up_ratio : float;
  transit_probes : bool;
  probe_timeout : float;
  quarantine_s : float;
  probe_seed : int;
}

type damping = {
  penalty : float;
  half_life : float;
  suppress : float;
  reuse : float;
}

type config = {
  hello_interval : float;
  hellos_missed : int;
  recompute_delay : float;
  metric : [ `Latency | `Hops ];
  data_plane : data_plane option;
  damping : damping option;
}

let default_config =
  { hello_interval = 0.05; hellos_missed = 2; recompute_delay = 0.1;
    metric = `Latency; data_plane = None; damping = None }

let default_data_plane =
  {
    probe_interval = 0.05;
    probes_per_sample = 4;
    window = 4;
    down_ratio = 0.5;
    up_ratio = 0.9;
    transit_probes = true;
    probe_timeout = 0.3;
    quarantine_s = 2.0;
    probe_seed = 0x5EED;
  }

let default_damping =
  { penalty = 1.0; half_life = 1.0; suppress = 2.5; reuse = 0.5 }

let verified_config =
  { default_config with
    data_plane = Some default_data_plane;
    damping = Some default_damping }

(* Transit probes are real packets; their ids live in a reserved range
   so observers (and tests) can tell them from scenario traffic. *)
let probe_id_base = 900_000_000

(* One adjacency under watch: every physical link object carrying
   traffic between u and v (both directions; deduplicated in case an
   undirected label is shared), plus the per-direction subsets the
   data-plane detector probes separately — a unidirectional fault
   shows up in exactly one of them. *)
type watch = {
  u : int;
  v : int;
  links : Link.t list;
  uv_links : Link.t list;
  vu_links : Link.t list;
  mutable missed : int;
  mutable declared_down : bool;  (* the hello detector's verdict *)
  mutable dp_down : bool;  (* the data-plane detector's verdict *)
  (* sliding windows of (delivered, offered) probe samples, newest
     first, one per direction *)
  mutable uv_samples : (int * int) list;
  mutable vu_samples : (int * int) list;
  (* flap damping: an exponentially decaying penalty, charged per
     believed-state flip; the adjacency is suppressed (held down)
     while the penalty sits above the suppress threshold *)
  mutable penalty : float;
  mutable penalty_time : float;
  mutable suppressed : bool;
  (* when a detector flag (declared_down / dp_down / suppressed) last
     cleared: lets the transit-probe judge discount a loss on a leg
     that was believed faulty at any point while the probe was in
     flight, not just at its deadline *)
  mutable flag_cleared_at : float;
}

(* Byzantine-node bookkeeping for the transit prober. *)
type quarantine = {
  mutable active : bool;
  mutable q_until : float;
  mutable strikes : int;  (* escalates the hold time on re-detection *)
  mutable fails : int;  (* consecutive failed transit probes *)
}

type t = {
  cfg : config;
  engine : Engine.t;
  net : Net.t;
  until : float;
  watches : watch list;
  mutable table : Linkstate.t;
  mutable recompute_pending : bool;
  mutable reconvergences : int;
  mutable reconvergence_times : float list; (* reversed *)
  mutable detections : ((int * int) * [ `Down | `Up ] * float) list;
    (* reversed *)
  mutable suppressions : int;
  (* data-plane state (unused when cfg.data_plane = None) *)
  probe_rng : Rng.t;
  quarantines : (int, quarantine) Hashtbl.t;
  (* outstanding transit probes: probe id -> transit node *)
  outstanding : (int, int) Hashtbl.t;
  (* completed transit probes: probe id -> judgment *)
  completed : (int, [ `Pass | `Fail | `Inconclusive ]) Hashtbl.t;
  mutable next_probe_id : int;
  mutable probes_sent : int;
  mutable probes_failed : int;
}

let build_watches links =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Graph.iter_edges links (fun a b l ->
      let key = if a <= b then (a, b) else (b, a) in
      (match Hashtbl.find_opt tbl key with
      | None ->
        Hashtbl.replace tbl key [ l ];
        order := key :: !order
      | Some ls -> if not (List.memq l ls) then Hashtbl.replace tbl key (l :: ls)));
  let directed u v =
    let acc = ref [] in
    Graph.iter_edges links (fun a b l ->
        if a = u && b = v && not (List.memq l !acc) then acc := l :: !acc);
    List.rev !acc
  in
  List.rev_map
    (fun ((u, v) as key) ->
      {
        u;
        v;
        links = List.rev (Hashtbl.find tbl key);
        uv_links = directed u v;
        vu_links = directed v u;
        missed = 0;
        declared_down = false;
        dp_down = false;
        uv_samples = [];
        vu_samples = [];
        penalty = 0.0;
        penalty_time = 0.0;
        suppressed = false;
        flag_cleared_at = neg_infinity;
      })
    !order

let node_quarantined t node =
  match Hashtbl.find_opt t.quarantines node with
  | Some q -> q.active
  | None -> false

let believed_down t =
  List.filter_map
    (fun w ->
      if
        w.declared_down || w.dp_down || w.suppressed
        || node_quarantined t w.u || node_quarantined t w.v
      then Some (w.u, w.v)
      else None)
    t.watches

let install t engine =
  t.recompute_pending <- false;
  t.table <-
    Linkstate.compute_live ~down:(believed_down t) (Net.links t.net)
      ~metric:t.cfg.metric;
  Net.set_forwarding t.net (Linkstate.forwarding t.table);
  t.reconvergences <- t.reconvergences + 1;
  t.reconvergence_times <- Engine.now engine :: t.reconvergence_times;
  if Flight.enabled () then
    Flight.emit ~sim_t:(Engine.now engine) ~flow:Flight.control_flow
      ~node:(-1) ~peer:(-1) ~detail:"routes-installed"
      ~value:(float_of_int (List.length (believed_down t)))
      "heal-reconverge"

(* Coalesce: a topology change noticed while a recompute is already
   scheduled folds into that recompute (it reads the believed-down set
   when it fires), mirroring a real control plane's SPF hold-down. *)
let request_recompute t engine =
  if not t.recompute_pending then begin
    t.recompute_pending <- true;
    ignore
      (Engine.schedule_after engine t.cfg.recompute_delay (fun engine ->
           install t engine))
  end

(* ---------- flap damping ---------- *)

let decay_penalty (d : damping) w now =
  if w.penalty > 0.0 then begin
    let dt = now -. w.penalty_time in
    if dt > 0.0 then
      w.penalty <- w.penalty *. (0.5 ** (dt /. d.half_life))
  end;
  w.penalty_time <- now

(* Every believed-state flip of an adjacency routes through here.  With
   damping off it is just a recompute request; with damping on each
   flip charges the penalty, and a watch whose penalty crosses the
   suppress threshold is held down — further flips are absorbed without
   touching the tables until the penalty decays below reuse. *)
let note_flip t w engine =
  match t.cfg.damping with
  | None -> request_recompute t engine
  | Some d ->
    let now = Engine.now engine in
    decay_penalty d w now;
    w.penalty <- w.penalty +. d.penalty;
    if w.suppressed then ()
    else if w.penalty >= d.suppress then begin
      w.suppressed <- true;
      t.suppressions <- t.suppressions + 1;
      if Flight.enabled () then
        Flight.emit ~sim_t:now ~flow:Flight.control_flow ~node:w.u ~peer:w.v
          ~detail:"suppress" ~value:w.penalty "heal-damp";
      request_recompute t engine
    end
    else request_recompute t engine

(* Called from the hello tick (the one timer that always runs): let a
   suppressed watch out of hold-down once its penalty has decayed. *)
let damping_release t engine =
  match t.cfg.damping with
  | None -> ()
  | Some d ->
    let now = Engine.now engine in
    List.iter
      (fun w ->
        if w.suppressed then begin
          decay_penalty d w now;
          if w.penalty <= d.reuse then begin
            w.suppressed <- false;
            w.flag_cleared_at <- now;
            if Flight.enabled () then
              Flight.emit ~sim_t:now ~flow:Flight.control_flow ~node:w.u
                ~peer:w.v ~detail:"reuse" ~value:w.penalty "heal-damp";
            request_recompute t engine
          end
        end)
      t.watches

(* ---------- the hello (control-plane) detector ---------- *)

let declare t w engine verdict ~detail =
  t.detections <- ((w.u, w.v), verdict, Engine.now engine) :: t.detections;
  if Flight.enabled () then
    Flight.emit ~sim_t:(Engine.now engine) ~flow:Flight.control_flow
      ~node:w.u ~peer:w.v ~detail ~value:0.0 "heal-detect";
  note_flip t w engine

let rec tick t engine =
  List.iter
    (fun w ->
      let up = List.for_all Link.is_up w.links in
      if up then begin
        w.missed <- 0;
        if w.declared_down then begin
          w.declared_down <- false;
          w.flag_cleared_at <- Engine.now engine;
          declare t w engine `Up ~detail:"up"
        end
      end
      else begin
        w.missed <- w.missed + 1;
        if (not w.declared_down) && w.missed >= t.cfg.hellos_missed then begin
          w.declared_down <- true;
          declare t w engine `Down ~detail:"down"
        end
      end)
    t.watches;
  damping_release t engine;
  let next = Engine.now engine +. t.cfg.hello_interval in
  if next <= t.until then ignore (Engine.schedule engine next (tick t))

(* ---------- the data-plane detector ---------- *)

(* One probe of a direction passes iff every link object carrying that
   direction would deliver — [Link.probe] is virtual, so sampling
   perturbs neither the traffic ledgers nor the episode fault
   streams. *)
let sample_direction t links n =
  match links with
  | [] -> (n, n)  (* a direction with no links can't drop: vacuously healthy *)
  | _ ->
    let ok = ref 0 in
    for _ = 1 to n do
      if List.for_all (fun l -> Link.probe l t.probe_rng) links then incr ok
    done;
    (!ok, n)

let push_sample window samples s =
  List.filteri (fun i _ -> i < window - 1) samples |> List.cons s

let ratio samples =
  let delivered, offered =
    List.fold_left
      (fun (d, o) (s, n) -> (d + s, o + n))
      (0, 0) samples
  in
  if offered = 0 then 1.0 else float_of_int delivered /. float_of_int offered

(* Windowed delivered/offered accounting with hysteresis: down on
   data-plane evidence even when every hello passes (gray failure,
   unidirectional fault); back up only once the windowed ratio has
   genuinely recovered. *)
let dp_sample_adjacencies t (dp : data_plane) engine =
  List.iter
    (fun w ->
      let uv = sample_direction t w.uv_links dp.probes_per_sample in
      let vu = sample_direction t w.vu_links dp.probes_per_sample in
      w.uv_samples <- push_sample dp.window w.uv_samples uv;
      w.vu_samples <- push_sample dp.window w.vu_samples vu;
      let worst = Float.min (ratio w.uv_samples) (ratio w.vu_samples) in
      if (not w.dp_down) && worst <= dp.down_ratio then begin
        w.dp_down <- true;
        declare t w engine `Down ~detail:"down:data-plane"
      end
      else if w.dp_down && worst >= dp.up_ratio then begin
        w.dp_down <- false;
        w.flag_cleared_at <- Engine.now engine;
        declare t w engine `Up ~detail:"up:data-plane"
      end)
    t.watches

(* ---------- transit probes (Byzantine-node detection) ---------- *)

let neighbors g node =
  let acc = ref [] in
  Graph.iter_edges g (fun a b _ ->
      if a = node && not (List.mem b !acc) then acc := b :: !acc;
      if b = node && not (List.mem a !acc) then acc := a :: !acc);
  List.sort compare !acc

let quarantine_for t node =
  match Hashtbl.find_opt t.quarantines node with
  | Some q -> q
  | None ->
    let q = { active = false; q_until = 0.0; strikes = 0; fails = 0 } in
    Hashtbl.replace t.quarantines node q;
    q

let quarantine t (dp : data_plane) engine node =
  let q = quarantine_for t node in
  let now = Engine.now engine in
  let hold = dp.quarantine_s *. (2.0 ** float_of_int q.strikes) in
  q.active <- true;
  q.q_until <- now +. hold;
  q.strikes <- q.strikes + 1;
  q.fails <- 0;
  if Flight.enabled () then
    Flight.emit ~sim_t:now ~flow:Flight.control_flow ~node ~peer:(-1)
      ~detail:"quarantine" ~value:hold "heal-quarantine";
  request_recompute t engine;
  ignore
    (Engine.schedule engine q.q_until (fun engine ->
         if q.active && Engine.now engine >= q.q_until then begin
           q.active <- false;
           if Flight.enabled () then
             Flight.emit ~sim_t:(Engine.now engine) ~flow:Flight.control_flow
               ~node ~peer:(-1) ~detail:"probation" ~value:0.0
               "heal-quarantine";
           request_recompute t engine
         end))

(* Was the (a, b) adjacency flagged by any detector at some point since
   [since]?  Used to avoid blaming a transit node for a loss a link
   fault explains.  Current flags count, and so does a flag that
   cleared after the probe left — a probe can die on a faulty leg and
   only be judged after the detectors have moved on. *)
let leg_faulted t ~since a b =
  List.exists
    (fun w ->
      ((w.u = a && w.v = b) || (w.u = b && w.v = a))
      && (w.declared_down || w.dp_down || w.suppressed
         || w.flag_cleared_at >= since))
    t.watches

(* Judge an outstanding probe at its deadline.  A probe the prober can
   itself explain — no route toward the transit node (e.g. quarantine),
   or a leg of the probe path the link detectors flagged as faulty at
   any point since the probe was sent — is inconclusive, not evidence;
   only a loss with both legs believed healthy throughout reads as a
   silent discard by the transit node. *)
let judge_probe t (dp : data_plane) engine ~probe_id ~sent ~via ~u ~v =
  match Hashtbl.find_opt t.completed probe_id with
  | Some `Pass ->
    Hashtbl.remove t.completed probe_id;
    (quarantine_for t via).fails <- 0
  | Some `Inconclusive -> Hashtbl.remove t.completed probe_id
  | Some `Fail | None ->
    Hashtbl.remove t.completed probe_id;
    if not (leg_faulted t ~since:sent u via || leg_faulted t ~since:sent via v)
    then begin
      (* lost without explanation, or still unaccounted for at the
         deadline: a strike against the transit node *)
      t.probes_failed <- t.probes_failed + 1;
      let q = quarantine_for t via in
      q.fails <- q.fails + 1;
      if (not q.active) && q.fails >= 2 then quarantine t dp engine via
    end

let dp_send_transit_probes t (dp : data_plane) engine =
  let g = Net.links t.net in
  let n = Graph.node_count g in
  let now = Engine.now engine in
  for via = 0 to n - 1 do
    if not (node_quarantined t via) then begin
      match neighbors g via with
      | u :: rest when rest <> [] ->
        let v = List.nth rest (Rng.int t.probe_rng (List.length rest)) in
        let probe_id = t.next_probe_id in
        t.next_probe_id <- t.next_probe_id + 1;
        t.probes_sent <- t.probes_sent + 1;
        Hashtbl.replace t.outstanding probe_id via;
        let p =
          Packet.make ~id:probe_id ~src:u ~dst:v ~created:now
            ~source_route:[ via ] ~size_bytes:64 ()
        in
        Net.inject t.net engine p;
        ignore
          (Engine.schedule engine (now +. dp.probe_timeout) (fun engine ->
               if Hashtbl.mem t.outstanding probe_id then begin
                 Hashtbl.remove t.outstanding probe_id;
                 judge_probe t dp engine ~probe_id ~sent:now ~via ~u ~v
               end))
      | _ -> ()
    end
  done

let rec dp_tick t (dp : data_plane) engine =
  dp_sample_adjacencies t dp engine;
  if dp.transit_probes then dp_send_transit_probes t dp engine;
  let next = Engine.now engine +. dp.probe_interval in
  (* stop early enough that every probe deadline fires before [until]:
     after that the control plane must go quiet so the engine drains *)
  if next +. dp.probe_timeout <= t.until then
    ignore (Engine.schedule engine next (dp_tick t dp))

(* Completion observer: records the judgment the deadline event reads.
   Runs for every packet; filters by the reserved probe-id range. *)
let observe_probe t p outcome =
  if
    p.Packet.id >= probe_id_base
    && Hashtbl.mem t.outstanding p.Packet.id
  then begin
    let judgment =
      match (outcome : Net.outcome) with
      | Net.Delivered _ -> `Pass
      | Net.Lost Net.No_route ->
        (* the prober's own tables couldn't reach the waypoint (it may
           have withdrawn it itself); says nothing about the node *)
        `Inconclusive
      | Net.Lost _ -> `Fail
    in
    Hashtbl.replace t.completed p.Packet.id judgment
  end

(* ---------- attach ---------- *)

let validate_config config =
  if not (config.hello_interval > 0.0) then
    invalid_arg "Selfheal.attach: non-positive hello interval";
  if config.hellos_missed < 1 then
    invalid_arg "Selfheal.attach: hellos_missed < 1";
  if not (config.recompute_delay >= 0.0) then
    invalid_arg "Selfheal.attach: negative recompute delay";
  (match config.data_plane with
  | None -> ()
  | Some dp ->
    if not (dp.probe_interval > 0.0) then
      invalid_arg "Selfheal.attach: non-positive probe interval";
    if dp.probes_per_sample < 1 then
      invalid_arg "Selfheal.attach: probes_per_sample < 1";
    if dp.window < 1 then invalid_arg "Selfheal.attach: window < 1";
    if not (dp.down_ratio >= 0.0 && dp.down_ratio < 1.0) then
      invalid_arg "Selfheal.attach: down_ratio outside [0,1)";
    if not (dp.up_ratio > dp.down_ratio && dp.up_ratio <= 1.0) then
      invalid_arg "Selfheal.attach: up_ratio must be in (down_ratio,1]";
    if not (dp.probe_timeout > 0.0) then
      invalid_arg "Selfheal.attach: non-positive probe timeout";
    if not (dp.quarantine_s > 0.0) then
      invalid_arg "Selfheal.attach: non-positive quarantine");
  match config.damping with
  | None -> ()
  | Some d ->
    if not (d.penalty > 0.0) then
      invalid_arg "Selfheal.attach: non-positive damping penalty";
    if not (d.half_life > 0.0) then
      invalid_arg "Selfheal.attach: non-positive damping half-life";
    if not (d.suppress > 0.0) then
      invalid_arg "Selfheal.attach: non-positive suppress threshold";
    if not (d.reuse >= 0.0 && d.reuse < d.suppress) then
      invalid_arg "Selfheal.attach: reuse must be in [0,suppress)"

let attach ?(config = default_config) ~until engine net =
  validate_config config;
  if not (Float.is_finite until) || until < Engine.now engine then
    invalid_arg "Selfheal.attach: until must be finite and >= now";
  let table = Linkstate.compute_live (Net.links net) ~metric:config.metric in
  Net.set_forwarding net (Linkstate.forwarding table);
  let seed =
    match config.data_plane with Some dp -> dp.probe_seed | None -> 0
  in
  let t =
    {
      cfg = config;
      engine;
      net;
      until;
      watches = build_watches (Net.links net);
      table;
      recompute_pending = false;
      reconvergences = 0;
      reconvergence_times = [];
      detections = [];
      suppressions = 0;
      probe_rng = Rng.create seed;
      quarantines = Hashtbl.create 8;
      outstanding = Hashtbl.create 32;
      completed = Hashtbl.create 32;
      next_probe_id = probe_id_base;
      probes_sent = 0;
      probes_failed = 0;
    }
  in
  let first = Engine.now engine +. config.hello_interval in
  if first <= until then ignore (Engine.schedule engine first (tick t));
  (match config.data_plane with
  | None -> ()
  | Some dp ->
    Net.on_complete net (observe_probe t);
    let first = Engine.now engine +. dp.probe_interval in
    if first +. dp.probe_timeout <= until then
      ignore (Engine.schedule engine first (dp_tick t dp)));
  t

let table t = t.table

let reconvergences t = t.reconvergences

let reconvergence_times t = List.rev t.reconvergence_times

let detections t = List.rev t.detections

let suppressions t = t.suppressions

let quarantined t =
  Hashtbl.fold (fun node q acc -> if q.active then node :: acc else acc)
    t.quarantines []
  |> List.sort compare

let probes_sent t = t.probes_sent

let probes_failed t = t.probes_failed
