module Graph = Tussle_prelude.Graph
module Flight = Tussle_obs.Flight
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Link = Tussle_netsim.Link

type config = {
  hello_interval : float;
  hellos_missed : int;
  recompute_delay : float;
  metric : [ `Latency | `Hops ];
}

let default_config =
  { hello_interval = 0.05; hellos_missed = 2; recompute_delay = 0.1;
    metric = `Latency }

(* One adjacency under watch: every physical link object carrying
   traffic between u and v (both directions; deduplicated in case an
   undirected label is shared). *)
type watch = {
  u : int;
  v : int;
  links : Link.t list;
  mutable missed : int;
  mutable declared_down : bool;
}

type t = {
  cfg : config;
  engine : Engine.t;
  net : Net.t;
  until : float;
  watches : watch list;
  mutable table : Linkstate.t;
  mutable recompute_pending : bool;
  mutable reconvergences : int;
  mutable reconvergence_times : float list; (* reversed *)
  mutable detections : ((int * int) * [ `Down | `Up ] * float) list;
    (* reversed *)
}

let build_watches links =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Graph.iter_edges links (fun a b l ->
      let key = if a <= b then (a, b) else (b, a) in
      match Hashtbl.find_opt tbl key with
      | None ->
        Hashtbl.replace tbl key [ l ];
        order := key :: !order
      | Some ls -> if not (List.memq l ls) then Hashtbl.replace tbl key (l :: ls));
  List.rev_map
    (fun ((u, v) as key) ->
      { u; v; links = List.rev (Hashtbl.find tbl key); missed = 0;
        declared_down = false })
    !order

let believed_down t =
  List.filter_map
    (fun w -> if w.declared_down then Some (w.u, w.v) else None)
    t.watches

let install t engine =
  t.recompute_pending <- false;
  t.table <-
    Linkstate.compute_live ~down:(believed_down t) (Net.links t.net)
      ~metric:t.cfg.metric;
  Net.set_forwarding t.net (Linkstate.forwarding t.table);
  t.reconvergences <- t.reconvergences + 1;
  t.reconvergence_times <- Engine.now engine :: t.reconvergence_times;
  if Flight.enabled () then
    Flight.emit ~sim_t:(Engine.now engine) ~flow:Flight.control_flow
      ~node:(-1) ~peer:(-1) ~detail:"routes-installed"
      ~value:(float_of_int (List.length (believed_down t)))
      "heal-reconverge"

(* Coalesce: a topology change noticed while a recompute is already
   scheduled folds into that recompute (it reads the believed-down set
   when it fires), mirroring a real control plane's SPF hold-down. *)
let request_recompute t engine =
  if not t.recompute_pending then begin
    t.recompute_pending <- true;
    ignore
      (Engine.schedule_after engine t.cfg.recompute_delay (fun engine ->
           install t engine))
  end

let rec tick t engine =
  List.iter
    (fun w ->
      let up = List.for_all Link.is_up w.links in
      if up then begin
        w.missed <- 0;
        if w.declared_down then begin
          w.declared_down <- false;
          t.detections <- ((w.u, w.v), `Up, Engine.now engine) :: t.detections;
          if Flight.enabled () then
            Flight.emit ~sim_t:(Engine.now engine)
              ~flow:Flight.control_flow ~node:w.u ~peer:w.v ~detail:"up"
              ~value:0.0 "heal-detect";
          request_recompute t engine
        end
      end
      else begin
        w.missed <- w.missed + 1;
        if (not w.declared_down) && w.missed >= t.cfg.hellos_missed then begin
          w.declared_down <- true;
          t.detections <-
            ((w.u, w.v), `Down, Engine.now engine) :: t.detections;
          if Flight.enabled () then
            Flight.emit ~sim_t:(Engine.now engine)
              ~flow:Flight.control_flow ~node:w.u ~peer:w.v ~detail:"down"
              ~value:0.0 "heal-detect";
          request_recompute t engine
        end
      end)
    t.watches;
  let next = Engine.now engine +. t.cfg.hello_interval in
  if next <= t.until then ignore (Engine.schedule engine next (tick t))

let attach ?(config = default_config) ~until engine net =
  if not (config.hello_interval > 0.0) then
    invalid_arg "Selfheal.attach: non-positive hello interval";
  if config.hellos_missed < 1 then
    invalid_arg "Selfheal.attach: hellos_missed < 1";
  if not (config.recompute_delay >= 0.0) then
    invalid_arg "Selfheal.attach: negative recompute delay";
  if not (Float.is_finite until) || until < Engine.now engine then
    invalid_arg "Selfheal.attach: until must be finite and >= now";
  let table = Linkstate.compute_live (Net.links net) ~metric:config.metric in
  Net.set_forwarding net (Linkstate.forwarding table);
  let t =
    {
      cfg = config;
      engine;
      net;
      until;
      watches = build_watches (Net.links net);
      table;
      recompute_pending = false;
      reconvergences = 0;
      reconvergence_times = [];
      detections = [];
    }
  in
  let first = Engine.now engine +. config.hello_interval in
  if first <= until then ignore (Engine.schedule engine first (tick t));
  t

let table t = t.table

let reconvergences t = t.reconvergences

let reconvergence_times t = List.rev t.reconvergence_times

let detections t = List.rev t.detections
