(** A self-healing link-state control plane.

    PR 4 made faults injectable; this module makes routing {e recover}
    from them instead of draining traffic into a black hole until the
    plan restores the link.  A [Selfheal.t] attached to a live
    {!Tussle_netsim.Net} samples every adjacency's liveness on a hello
    timer, declares a link down after a configurable number of
    consecutive missed hellos (and up again on the first good one),
    and — one recompute delay later — swaps a freshly computed
    {!Linkstate} forwarding table into the net via
    {!Tussle_netsim.Net.set_forwarding}.  Packets in flight consult
    the new table at their next hop.

    Hello sampling reads {!Tussle_netsim.Link.is_up} — the control
    plane's view — which a whole family of faults leaves untouched: a
    gray-loss episode drops data while hellos pass, a unidirectional
    fault kills one direction, a Byzantine node answers hellos while
    silently discarding transit traffic.  The optional {!data_plane}
    detector closes that gap with evidence from the data plane itself:
    windowed delivered/offered probe accounting per adjacency
    direction (via {!Tussle_netsim.Link.probe}, which never perturbs
    traffic or fault streams), and seeded end-to-end transit probes —
    real packets source-routed through each candidate node — whose
    silent disappearance unmasks a blackhole and quarantines it.  The
    optional {!damping} config adds route-flap damping: each
    believed-state flip charges an exponentially decaying penalty, and
    an adjacency whose penalty crosses the suppress threshold is held
    down until the penalty decays to reuse, bounding the recompute
    churn a flapping link can extort.

    The control plane acts only on what it has {e detected}: between a
    link dying and the hello timeout expiring, traffic still drops on
    the dead link.  That detection window — plus the recompute delay —
    is the convergence time E29 measures, and the knob the paper's
    "design for variation in outcome" argument turns. *)

type data_plane = {
  probe_interval : float;  (** seconds between probe batches *)
  probes_per_sample : int;
      (** virtual probes per adjacency direction per batch *)
  window : int;  (** sliding window length, in batches *)
  down_ratio : float;
      (** declare down when the windowed delivered/offered ratio of
          either direction falls to this or below *)
  up_ratio : float;
      (** declare back up once the windowed ratio recovers to this or
          above (hysteresis: must exceed [down_ratio]) *)
  transit_probes : bool;
      (** send end-to-end probes through each candidate transit node *)
  probe_timeout : float;
      (** deadline after which an unanswered transit probe counts as a
          silent discard *)
  quarantine_s : float;
      (** base exclusion time for a detected blackhole; doubles on
          each re-detection *)
  probe_seed : int;  (** rng seed for all probe draws *)
}

type damping = {
  penalty : float;  (** charged per believed-state flip *)
  half_life : float;  (** seconds for the penalty to decay by half *)
  suppress : float;  (** hold the adjacency down above this *)
  reuse : float;  (** release it once decayed to this *)
}

type config = {
  hello_interval : float;  (** seconds between liveness samples *)
  hellos_missed : int;
      (** consecutive missed hellos before a link is declared down *)
  recompute_delay : float;
      (** control-plane delay between detection and new tables taking
          effect (SPF computation + flooding, coalescing bursts) *)
  metric : [ `Latency | `Hops ];  (** cost metric for recomputed paths *)
  data_plane : data_plane option;
      (** [None]: hello-only detection, the pre-gray behavior *)
  damping : damping option;  (** [None]: every flip recomputes *)
}

val default_config : config
(** 50 ms hellos, 2 missed, 100 ms recompute, [`Latency] metric, no
    data-plane detector, no damping: detection + installation in
    roughly 200 ms, byte-identical to the pre-data-plane control
    plane. *)

val default_data_plane : data_plane
(** 50 ms batches of 4 probes per direction, window 4, down at <= 50%
    delivered, up at >= 90%, transit probes with a 300 ms deadline,
    2 s base quarantine. *)

val default_damping : damping
(** Penalty 1 per flip, 1 s half-life, suppress at 2.5, reuse at
    0.5. *)

val verified_config : config
(** {!default_config} plus {!default_data_plane} and
    {!default_damping}: the data-plane-verified control plane E30
    contrasts against hello-only healing. *)

val probe_id_base : int
(** Transit-probe packets carry ids from this range (900 000 000 and
    up) so observers and tests can separate them from scenario
    traffic.  Scenario flows must stay below it. *)

type t

val attach :
  ?config:config ->
  until:float ->
  Tussle_netsim.Engine.t ->
  Tussle_netsim.Net.t ->
  t
(** [attach ~until engine net] computes initial tables from the net's
    link graph, installs them, and schedules hello ticks every
    [hello_interval] up to simulation time [until] (after which the
    control plane goes quiet, so the engine can drain — chaos
    scenarios rely on this bound).  With a [data_plane] config, probe
    batches tick every [probe_interval], stopping early enough that
    every probe deadline also lands before [until].  Raises
    [Invalid_argument] on a non-positive hello interval,
    [hellos_missed < 1], a negative recompute delay, a non-finite
    [until] in the past, or a malformed [data_plane]/[damping]
    sub-config (non-positive intervals/timeouts, [down_ratio] outside
    [0,1), [up_ratio] not in ([down_ratio],1], [reuse] not in
    [0,[suppress])). *)

val table : t -> Linkstate.t
(** The currently installed forwarding table. *)

val believed_down : t -> (int * int) list
(** Adjacencies currently withdrawn, in watch order: hello-declared
    down, data-plane-declared down, damping-suppressed, or incident to
    a quarantined node (what the control plane believes, which lags
    ground truth by the detection window). *)

val reconvergences : t -> int
(** Number of table recomputations installed so far (a down {e and}
    the later restore each count one; bursts coalesce). *)

val reconvergence_times : t -> float list
(** Simulation times at which new tables took effect, oldest first.
    E29's convergence time is [install_time - fault_time]. *)

val detections : t -> ((int * int) * [ `Down | `Up ] * float) list
(** Every liveness-state flip a detector declared, oldest first —
    hello and data-plane verdicts interleaved. *)

val suppressions : t -> int
(** Times any adjacency entered damping hold-down. *)

val quarantined : t -> int list
(** Nodes currently quarantined as suspected blackholes, sorted. *)

val probes_sent : t -> int
(** End-to-end transit probes injected so far. *)

val probes_failed : t -> int
(** Transit probes judged as silent discards at their deadline. *)
