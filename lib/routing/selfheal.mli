(** A self-healing link-state control plane.

    PR 4 made faults injectable; this module makes routing {e recover}
    from them instead of draining traffic into a black hole until the
    plan restores the link.  A [Selfheal.t] attached to a live
    {!Tussle_netsim.Net} samples every adjacency's liveness on a hello
    timer, declares a link down after a configurable number of
    consecutive missed hellos (and up again on the first good one),
    and — one recompute delay later — swaps a freshly computed
    {!Linkstate} forwarding table into the net via
    {!Tussle_netsim.Net.set_forwarding}.  Packets in flight consult
    the new table at their next hop.

    The control plane acts only on what it has {e detected}: between a
    link dying and the hello timeout expiring, traffic still drops on
    the dead link.  That detection window — plus the recompute delay —
    is the convergence time E29 measures, and the knob the paper's
    "design for variation in outcome" argument turns. *)

type config = {
  hello_interval : float;  (** seconds between liveness samples *)
  hellos_missed : int;
      (** consecutive missed hellos before a link is declared down *)
  recompute_delay : float;
      (** control-plane delay between detection and new tables taking
          effect (SPF computation + flooding, coalescing bursts) *)
  metric : [ `Latency | `Hops ];  (** cost metric for recomputed paths *)
}

val default_config : config
(** 50 ms hellos, 2 missed, 100 ms recompute, [`Latency] metric:
    detection + installation in roughly 200 ms. *)

type t

val attach :
  ?config:config ->
  until:float ->
  Tussle_netsim.Engine.t ->
  Tussle_netsim.Net.t ->
  t
(** [attach ~until engine net] computes initial tables from the net's
    link graph, installs them, and schedules hello ticks every
    [hello_interval] up to simulation time [until] (after which the
    control plane goes quiet, so the engine can drain — chaos
    scenarios rely on this bound).  Raises [Invalid_argument] on a
    non-positive hello interval, [hellos_missed < 1], a negative
    recompute delay, or a non-finite [until] in the past. *)

val table : t -> Linkstate.t
(** The currently installed forwarding table. *)

val believed_down : t -> (int * int) list
(** Adjacencies currently declared down, in watch order (what the
    control plane believes, which lags ground truth by the detection
    window). *)

val reconvergences : t -> int
(** Number of table recomputations installed so far (a down {e and}
    the later restore each count one; bursts coalesce). *)

val reconvergence_times : t -> float list
(** Simulation times at which new tables took effect, oldest first.
    E29's convergence time is [install_time - fault_time]. *)

val detections : t -> ((int * int) * [ `Down | `Up ] * float) list
(** Every liveness-state flip the detector declared, oldest first. *)
