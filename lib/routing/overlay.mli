(** Overlay routing: end systems route around the network's choices.

    The paper calls overlays "a tool in the tussle" (§V-A4, footnote 7):
    end-users over-rule constrained provider routing with tunnels and
    relays (RON-style).  The overlay does not see the underlay's
    internals; it only {e measures} — so every function here takes a
    [latency] probe giving the measured delay of the underlay's chosen
    path between two overlay nodes ([None] = unreachable). *)

val measured_latency :
  Linkstate.t ->
  Tussle_netsim.Topology.edge Tussle_prelude.Graph.t ->
  src:int -> dst:int -> float option
(** The latency an overlay probe observes between two nodes: the sum of
    link latencies along the underlay routing's chosen path (which may
    be hop-optimal rather than latency-optimal — that gap is the
    overlay's opportunity). *)

val best_relay :
  latency:(int -> int -> float option) ->
  candidates:int list -> src:int -> dst:int ->
  (int * float) option
(** Relay minimizing measured latency [src -> r -> dst] over reachable
    candidates; returns the relay and the two-leg latency. *)

val latency_improvement :
  latency:(int -> int -> float option) ->
  candidates:int list -> src:int -> dst:int -> float option
(** Direct measured latency minus best relayed latency (positive =
    overlay wins).  [None] when either direct or relayed connectivity is
    missing. *)

val reachable_via :
  can_reach:(int -> int -> bool) -> candidates:int list ->
  src:int -> dst:int -> int option
(** First candidate [r] (ascending) with [can_reach src r] and
    [can_reach r dst]: connectivity restored through a willing
    intermediary even when [can_reach src dst] is false — "exploiting
    hosts as intermediate forwarding agents." *)

val path_alive :
  Linkstate.t ->
  Tussle_netsim.Link.t Tussle_prelude.Graph.t ->
  src:int -> dst:int -> bool
(** What an overlay liveness probe measures against a static underlay:
    the underlay's chosen path exists {e and} every link along it is
    currently up.  [false] the instant a link on the path dies — the
    overlay notices failures at probe speed, long before (or instead
    of) the underlay's control plane re-converging. *)

val failover_waypoints :
  can_reach:(int -> int -> bool) -> candidates:int list ->
  src:int -> dst:int -> int list option
(** The overlay's per-packet routing decision, recomputed every time
    liveness changes: [Some []] while the direct path is alive (no
    detour), [Some [r]] when it is dead but a relay [r] has both legs
    alive ({!reachable_via}), [None] when no relay can help.  The
    result plugs straight into a packet's loose source route. *)

val recovery_ratio :
  can_reach:(int -> int -> bool) -> candidates:int list ->
  pairs:(int * int) list -> float
(** Over the blocked pairs of [pairs] (those with [not (can_reach src
    dst)]), the fraction recoverable through some relay.  [1.0] when no
    pair is blocked. *)
