(** Declarative fault plans.

    A plan is a list of episodes, each scoped to a time window, that
    {!Inject.install} compiles into timed {!Tussle_netsim.Engine}
    events.  Plans are plain data: build them by hand, or draw
    reproducible ones from a seeded rng with {!random}.  The same plan
    plus the same injection seed yields byte-identical simulations. *)

type window = { from_s : float; until_s : float }
(** Half-open activity window [\[from_s, until_s)].  [until_s] may be
    [infinity] for a fault that never clears (no restore event is
    scheduled). *)

type spec =
  | Link_down of { u : int; v : int; w : window }
      (** both directions of (u, v) drop everything offered *)
  | Link_loss of { u : int; v : int; w : window; prob : float }
      (** per-packet on-the-wire loss *)
  | Link_corrupt of { u : int; v : int; w : window; prob : float }
      (** per-packet corruption (capacity still consumed) *)
  | Latency_spike of { u : int; v : int; w : window; extra_s : float }
      (** additive propagation latency *)
  | Node_crash of { node : int; w : window }
      (** every link incident to [node] goes down, then restores *)
  | Middlebox_break of { node : int; w : window; covert : bool }
      (** a deployed device at [node] fails closed and drops all
          transit traffic; a {e covert} failure gives no error
          information while a revealing one names itself to probes —
          the §VI-A distinction diagnosis tools must survive *)
  | Gray_loss of { u : int; v : int; w : window; prob : float }
      (** a gray failure: data packets crossing (u, v) drop with
          probability [prob] while control-plane liveness probes keep
          passing — structurally invisible to hello-based detection *)
  | Unidirectional_down of { u : int; v : int; w : window }
      (** only the u->v direction of the adjacency drops traffic; the
          v->u direction stays healthy *)
  | Link_flap of {
      u : int;
      v : int;
      w : window;
      period_s : float;
      duty : float;
    }
      (** periodic up/down inside the window: each [period_s] the link
          goes down for [duty * period_s], then back up; restored at
          window close.  The window must be finite, the period positive
          and the duty in (0,1). *)
  | Blackhole of { node : int; w : window }
      (** a Byzantine node: answers control-plane hellos and accepts
          traffic addressed to itself, but silently discards every
          packet it would have forwarded for others *)

type t = spec list

val window : float -> float -> window
(** [window from until]; validated by {!validate}/[Inject.install]. *)

val always : window
(** [{from_s = 0.; until_s = infinity}]: active for the whole run. *)

val validate : t -> unit
(** Raises [Invalid_argument] on a malformed plan: negative or
    non-finite [from_s], [until_s <= from_s], probability outside
    [0,1], negative latency spike, [u = v], an infinite flap window,
    a non-positive flap period, or a flap duty outside (0,1). *)

val transitions : t -> int
(** Total control-observable fault transitions the plan drives: each
    finite-window episode counts its open and close (2), an infinite
    one only its open (1), and a flap every down/up toggle plus the
    final restore.  The damping-bounds-reconvergence invariant uses
    this as the normalizer for a run's reconvergence count. *)

val broken_device_name : string
(** Middlebox name installed by [Middlebox_break] episodes
    (["broken-device"]); what a revealing failure confesses as. *)

val random :
  ?extended:bool ->
  Tussle_prelude.Rng.t ->
  links:(int * int) list ->
  horizon:float ->
  episodes:int ->
  t
(** [random rng ~links ~horizon ~episodes] draws [episodes] episodes
    uniformly over the full grammar — down / loss / corrupt /
    latency-spike / node-crash / gray-loss / unidirectional-down /
    flap / blackhole — over the given links (node-scoped episodes
    target link endpoints), with windows inside [\[0, horizon)].
    [~extended:false] restricts the draw to the four legacy link-level
    kinds (down / loss / corrupt / latency-spike), the pre-gray
    grammar tests use as a contrast.  Equal rng states yield equal
    plans.  Raises [Invalid_argument] on an empty [links] list,
    non-positive [horizon] or negative [episodes]. *)

val mutation_horizon_factor : float
(** Mutated windows are capped at [mutation_horizon_factor * horizon]
    (4.0).  Past the scenario's nominal horizon — so a mutant can leave
    a fault open across the run's end, a shape {!random} never draws —
    but bounded, so compounding widens across search generations cannot
    creep toward the chaos guard horizon. *)

val mutate :
  Tussle_prelude.Rng.t -> links:(int * int) list -> horizon:float -> t -> t
(** [mutate rng ~links ~horizon plan] applies one structural mutation:
    add a fresh random episode, remove one, widen or shift an episode's
    window (clamped to [\[0, mutation_horizon_factor * horizon\]]),
    perturb a probability / latency magnitude, or retarget an episode
    to another link.  The result always passes {!validate}.  Equal rng
    states and inputs yield equal mutants — the adversarial search
    derives every mutation purely from [(seed, index)].  Raises
    [Invalid_argument] on an empty [links] list or non-positive
    [horizon]. *)

val spec_string : spec -> string
(** One episode rendered in the [to_string] line format, e.g.
    ["link 1-2 down [0.2, 0.9)"].  Used by the flight recorder's
    fault-open/fault-close events and by [tussle explain] when naming
    the episode a drop is attributed to. *)

val to_string : t -> string
(** One line per episode.  Human-readable {e and} lossless: floats are
    printed with enough digits to round-trip exactly, so
    [of_string (to_string p) = Ok p] for any valid plan — the chaos
    corpus persists plans through this format. *)

val of_string : string -> (t, string) result
(** Parse the [to_string] format back into a plan.  Blank lines and
    lines starting with [#] are skipped (corpus files carry headers as
    comments).  [Error] names the first offending line.  The result is
    {e not} validated: run {!validate} before installing it. *)
