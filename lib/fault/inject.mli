(** Compile a {!Plan} into timed engine events against a live net.

    [install] walks the plan in order, derives any rng streams it needs
    from the given seed (one {!Tussle_prelude.Rng.split} per stochastic
    episode, in plan order — so equal seed + plan means equal streams),
    and schedules set/restore events on the engine.  Faults then take
    effect as the simulation crosses their windows; drops they cause
    are attributed by {!Tussle_netsim.Net.losses_by_reason} and the
    [net.drops.*] metrics.

    Link episodes apply to {e every} link between the two endpoints in
    both directions (deduplicated by physical identity, so a shared
    undirected label is set once) — except [Unidirectional_down], which
    touches only the links carrying u->v traffic.  Episodes targeting
    the same link should not overlap in time: each window restores the
    link's baseline when it closes, so the last writer wins.

    [Link_flap] compiles to a deterministic toggle schedule (down at
    [from + k*period], up [duty*period] later, unconditional restore at
    window close); every toggle lands in the flight recorder as its own
    fault-open/fault-close event.  [Gray_loss] draws per-packet from
    its own split stream, like [Link_loss] — but drops while the link's
    control-plane view stays up.  [Blackhole] flips the net's Byzantine
    bit for the node: hellos keep flowing, transit traffic silently
    dies, attributed as ["blackholed"].

    [Middlebox_break] attaches a device named
    {!Plan.broken_device_name} at the node immediately (it forwards
    everything until its window opens, then drops everything until it
    closes).  A covert break hides from probes
    ([reveals_presence = false]); a revealing one confesses — the
    §VI-A failure-visibility axis E28 measures. *)

val install :
  seed:int ->
  plan:Plan.t ->
  Tussle_netsim.Engine.t ->
  Tussle_netsim.Net.t ->
  unit
(** Raises [Invalid_argument] if the plan fails {!Plan.validate}, if an
    episode names a link absent from the net, a node out of range, or
    if a window opens before the engine's current time. *)
