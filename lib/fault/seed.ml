let default = 1031

let state = Atomic.make default

let get () = Atomic.get state

let set s = Atomic.set state s
