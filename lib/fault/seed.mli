(** Process-wide fault-injection seed.

    Experiments that inject faults derive their plans and rng streams
    from this seed so a battery can be replayed bit-for-bit: the CLI
    and bench set it once (from [--fault-seed]) before any experiment
    runs.  Stored in an [Atomic] so parallel batteries read a
    consistent value; set it only before running experiments. *)

val default : int
(** 1031 — the seed used when nothing overrides it. *)

val get : unit -> int

val set : int -> unit
