module Rng = Tussle_prelude.Rng

type window = { from_s : float; until_s : float }

type spec =
  | Link_down of { u : int; v : int; w : window }
  | Link_loss of { u : int; v : int; w : window; prob : float }
  | Link_corrupt of { u : int; v : int; w : window; prob : float }
  | Latency_spike of { u : int; v : int; w : window; extra_s : float }
  | Node_crash of { node : int; w : window }
  | Middlebox_break of { node : int; w : window; covert : bool }

type t = spec list

let window from_s until_s = { from_s; until_s }

let always = { from_s = 0.0; until_s = infinity }

let broken_device_name = "broken-device"

let check_window w =
  if not (Float.is_finite w.from_s) || w.from_s < 0.0 then
    invalid_arg "Fault plan: window start must be finite and >= 0";
  if not (w.until_s > w.from_s) then
    invalid_arg "Fault plan: window must end after it starts"

let check_prob p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Fault plan: probability outside [0,1]"

let check_endpoints u v =
  if u = v then invalid_arg "Fault plan: link endpoints must differ"

let validate plan =
  List.iter
    (function
      | Link_down { u; v; w } ->
        check_endpoints u v;
        check_window w
      | Link_loss { u; v; w; prob } | Link_corrupt { u; v; w; prob } ->
        check_endpoints u v;
        check_window w;
        check_prob prob
      | Latency_spike { u; v; w; extra_s } ->
        check_endpoints u v;
        check_window w;
        if not (extra_s >= 0.0) then
          invalid_arg "Fault plan: negative latency spike"
      | Node_crash { w; _ } | Middlebox_break { w; _ } -> check_window w)
    plan

let random rng ~links ~horizon ~episodes =
  if links = [] then invalid_arg "Plan.random: no links";
  if not (horizon > 0.0) then invalid_arg "Plan.random: non-positive horizon";
  if episodes < 0 then invalid_arg "Plan.random: negative episode count";
  let links = Array.of_list links in
  List.init episodes (fun _ ->
      let u, v = Rng.choice rng links in
      let from_s = Rng.uniform rng 0.0 (0.6 *. horizon) in
      let until_s = from_s +. Rng.uniform rng (0.1 *. horizon) (0.4 *. horizon) in
      let w = { from_s; until_s } in
      match Rng.int rng 4 with
      | 0 -> Link_down { u; v; w }
      | 1 -> Link_loss { u; v; w; prob = Rng.uniform rng 0.05 0.3 }
      | 2 -> Link_corrupt { u; v; w; prob = Rng.uniform rng 0.02 0.15 }
      | _ -> Latency_spike { u; v; w; extra_s = Rng.uniform rng 0.005 0.05 })

let window_string w =
  if Float.is_finite w.until_s then
    Printf.sprintf "[%.3f, %.3f)" w.from_s w.until_s
  else Printf.sprintf "[%.3f, inf)" w.from_s

let spec_string = function
  | Link_down { u; v; w } ->
    Printf.sprintf "link %d-%d down %s" u v (window_string w)
  | Link_loss { u; v; w; prob } ->
    Printf.sprintf "link %d-%d loss p=%.3f %s" u v prob (window_string w)
  | Link_corrupt { u; v; w; prob } ->
    Printf.sprintf "link %d-%d corrupt p=%.3f %s" u v prob (window_string w)
  | Latency_spike { u; v; w; extra_s } ->
    Printf.sprintf "link %d-%d +%.3fs latency %s" u v extra_s (window_string w)
  | Node_crash { node; w } ->
    Printf.sprintf "node %d crash %s" node (window_string w)
  | Middlebox_break { node; w; covert } ->
    Printf.sprintf "%s middlebox failure at node %d %s"
      (if covert then "covert" else "revealing")
      node (window_string w)

let to_string plan = String.concat "\n" (List.map spec_string plan)
