module Rng = Tussle_prelude.Rng

type window = { from_s : float; until_s : float }

type spec =
  | Link_down of { u : int; v : int; w : window }
  | Link_loss of { u : int; v : int; w : window; prob : float }
  | Link_corrupt of { u : int; v : int; w : window; prob : float }
  | Latency_spike of { u : int; v : int; w : window; extra_s : float }
  | Node_crash of { node : int; w : window }
  | Middlebox_break of { node : int; w : window; covert : bool }
  | Gray_loss of { u : int; v : int; w : window; prob : float }
  | Unidirectional_down of { u : int; v : int; w : window }
  | Link_flap of {
      u : int;
      v : int;
      w : window;
      period_s : float;
      duty : float;
    }
  | Blackhole of { node : int; w : window }

type t = spec list

let window from_s until_s = { from_s; until_s }

let always = { from_s = 0.0; until_s = infinity }

let broken_device_name = "broken-device"

let check_window w =
  if not (Float.is_finite w.from_s) || w.from_s < 0.0 then
    invalid_arg "Fault plan: window start must be finite and >= 0";
  if not (w.until_s > w.from_s) then
    invalid_arg "Fault plan: window must end after it starts"

let check_prob p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Fault plan: probability outside [0,1]"

let check_endpoints u v =
  if u = v then invalid_arg "Fault plan: link endpoints must differ"

let validate plan =
  List.iter
    (function
      | Link_down { u; v; w } ->
        check_endpoints u v;
        check_window w
      | Link_loss { u; v; w; prob } | Link_corrupt { u; v; w; prob } ->
        check_endpoints u v;
        check_window w;
        check_prob prob
      | Latency_spike { u; v; w; extra_s } ->
        check_endpoints u v;
        check_window w;
        if not (extra_s >= 0.0) then
          invalid_arg "Fault plan: negative latency spike"
      | Node_crash { w; _ } | Middlebox_break { w; _ } | Blackhole { w; _ } ->
        check_window w
      | Gray_loss { u; v; w; prob } ->
        check_endpoints u v;
        check_window w;
        check_prob prob
      | Unidirectional_down { u; v; w } ->
        check_endpoints u v;
        check_window w
      | Link_flap { u; v; w; period_s; duty } ->
        check_endpoints u v;
        check_window w;
        if not (Float.is_finite w.until_s) then
          invalid_arg "Fault plan: flap window must be finite";
        if not (Float.is_finite period_s && period_s > 0.0) then
          invalid_arg "Fault plan: flap period must be finite and positive";
        if not (duty > 0.0 && duty < 1.0) then
          invalid_arg "Fault plan: flap duty outside (0,1)")
    plan

(* How many control-observable state flips an episode drives: a finite
   window opens and closes (2), an infinite one only opens (1), and a
   flap toggles every down/up edge plus the final restore at window
   close.  The damping-bounds-reconvergence invariant normalizes a
   run's reconvergence count by this. *)
let spec_transitions = function
  | Link_flap { w; period_s; duty; _ } ->
    let n = ref 1 (* the restore at window close *) in
    let k = ref 0 in
    let continue = ref true in
    while !continue do
      let down = w.from_s +. (period_s *. float_of_int !k) in
      if down < w.until_s then begin
        incr n;
        if down +. (duty *. period_s) < w.until_s then incr n;
        incr k
      end
      else continue := false
    done;
    !n
  | Link_down { w; _ }
  | Link_loss { w; _ }
  | Link_corrupt { w; _ }
  | Latency_spike { w; _ }
  | Node_crash { w; _ }
  | Middlebox_break { w; _ }
  | Gray_loss { w; _ }
  | Unidirectional_down { w; _ }
  | Blackhole { w; _ } ->
    if Float.is_finite w.until_s then 2 else 1

let transitions plan =
  List.fold_left (fun acc spec -> acc + spec_transitions spec) 0 plan

let draw_episode ?(extended = true) rng ~links ~horizon =
  let u, v = Rng.choice rng links in
  let from_s = Rng.uniform rng 0.0 (0.6 *. horizon) in
  let until_s = from_s +. Rng.uniform rng (0.1 *. horizon) (0.4 *. horizon) in
  let w = { from_s; until_s } in
  match Rng.int rng (if extended then 9 else 4) with
  | 0 -> Link_down { u; v; w }
  | 1 -> Link_loss { u; v; w; prob = Rng.uniform rng 0.05 0.3 }
  | 2 -> Link_corrupt { u; v; w; prob = Rng.uniform rng 0.02 0.15 }
  | 3 -> Latency_spike { u; v; w; extra_s = Rng.uniform rng 0.005 0.05 }
  | 4 -> Node_crash { node = u; w }
  | 5 -> Gray_loss { u; v; w; prob = Rng.uniform rng 0.3 0.9 }
  | 6 -> Unidirectional_down { u; v; w }
  | 7 ->
    Link_flap
      {
        u;
        v;
        w;
        period_s = Rng.uniform rng (0.05 *. horizon) (0.25 *. horizon);
        duty = Rng.uniform rng 0.2 0.8;
      }
  | _ -> Blackhole { node = v; w }

let random ?(extended = true) rng ~links ~horizon ~episodes =
  if links = [] then invalid_arg "Plan.random: no links";
  if not (horizon > 0.0) then invalid_arg "Plan.random: non-positive horizon";
  if episodes < 0 then invalid_arg "Plan.random: negative episode count";
  let links = Array.of_list links in
  List.init episodes (fun _ -> draw_episode ~extended rng ~links ~horizon)

(* ---------- mutation operators (adversarial search) ---------- *)

(* Mutated windows may outlive the scenario's nominal horizon — a
   restore event scheduled after the run's end is a classic wedge that
   [random]'s in-horizon windows can never produce — but are capped at
   [mutation_horizon_factor * horizon] so compounding widens across
   generations cannot creep toward the chaos guard horizon and turn
   every mutant into a trivial "still faulted at guard time" finding. *)
let mutation_horizon_factor = 4.0

let spec_window = function
  | Link_down { w; _ }
  | Link_loss { w; _ }
  | Link_corrupt { w; _ }
  | Latency_spike { w; _ }
  | Node_crash { w; _ }
  | Middlebox_break { w; _ }
  | Gray_loss { w; _ }
  | Unidirectional_down { w; _ }
  | Link_flap { w; _ }
  | Blackhole { w; _ } ->
    w

let with_window spec w =
  match spec with
  | Link_down { u; v; w = _ } -> Link_down { u; v; w }
  | Link_loss { u; v; prob; w = _ } -> Link_loss { u; v; w; prob }
  | Link_corrupt { u; v; prob; w = _ } -> Link_corrupt { u; v; w; prob }
  | Latency_spike { u; v; extra_s; w = _ } -> Latency_spike { u; v; w; extra_s }
  | Node_crash { node; w = _ } -> Node_crash { node; w }
  | Middlebox_break { node; covert; w = _ } -> Middlebox_break { node; w; covert }
  | Gray_loss { u; v; prob; w = _ } -> Gray_loss { u; v; w; prob }
  | Unidirectional_down { u; v; w = _ } -> Unidirectional_down { u; v; w }
  | Link_flap { u; v; period_s; duty; w = _ } ->
    Link_flap { u; v; w; period_s; duty }
  | Blackhole { node; w = _ } -> Blackhole { node; w }

let clamp lo hi x = Float.max lo (Float.min hi x)

let widen_spec rng ~cap spec =
  let w = spec_window spec in
  let until_s =
    if Float.is_finite w.until_s then
      Float.min cap
        (w.from_s +. ((w.until_s -. w.from_s) *. Rng.uniform rng 1.25 2.5))
    else cap
  in
  if until_s > w.from_s then with_window spec { w with until_s } else spec

let shift_spec rng ~horizon ~cap spec =
  let w = spec_window spec in
  let dur = w.until_s -. w.from_s in
  let delta = Rng.uniform rng (-0.25 *. horizon) (0.25 *. horizon) in
  if Float.is_finite dur then begin
    let hi = Float.max 0.0 (cap -. dur) in
    let from_s = clamp 0.0 hi (w.from_s +. delta) in
    let until_s = from_s +. dur in
    if until_s > from_s then with_window spec { from_s; until_s } else spec
  end
  else with_window spec { w with from_s = Float.max 0.0 (w.from_s +. delta) }

let perturb_spec rng ~cap spec =
  let scale = Rng.uniform rng 0.5 1.6 in
  match spec with
  | Link_loss { u; v; w; prob } ->
    Link_loss { u; v; w; prob = clamp 0.0 1.0 (prob *. scale) }
  | Link_corrupt { u; v; w; prob } ->
    Link_corrupt { u; v; w; prob = clamp 0.0 1.0 (prob *. scale) }
  | Latency_spike { u; v; w; extra_s } ->
    Latency_spike { u; v; w; extra_s = extra_s *. scale }
  | Gray_loss { u; v; w; prob } ->
    Gray_loss { u; v; w; prob = clamp 0.0 1.0 (prob *. scale) }
  | Link_flap { u; v; w; period_s; duty } ->
    (* the period floor keeps compounding perturbations from driving
       the toggle count toward infinity *)
    Link_flap
      {
        u;
        v;
        w;
        period_s = clamp 0.01 cap (period_s *. scale);
        duty = clamp 0.05 0.95 (duty *. scale);
      }
  | (Link_down _ | Node_crash _ | Middlebox_break _ | Unidirectional_down _
    | Blackhole _) as s ->
    (* no probability to perturb; widen the window instead *)
    widen_spec rng ~cap s

let retarget_spec rng ~links spec =
  let u, v = Rng.choice rng links in
  match spec with
  | Link_down { w; _ } -> Link_down { u; v; w }
  | Link_loss { w; prob; _ } -> Link_loss { u; v; w; prob }
  | Link_corrupt { w; prob; _ } -> Link_corrupt { u; v; w; prob }
  | Latency_spike { w; extra_s; _ } -> Latency_spike { u; v; w; extra_s }
  | Node_crash { w; _ } -> Node_crash { node = u; w }
  | Middlebox_break { w; covert; _ } -> Middlebox_break { node = u; w; covert }
  | Gray_loss { w; prob; _ } -> Gray_loss { u; v; w; prob }
  | Unidirectional_down { w; _ } -> Unidirectional_down { u; v; w }
  | Link_flap { w; period_s; duty; _ } -> Link_flap { u; v; w; period_s; duty }
  | Blackhole { w; _ } -> Blackhole { node = u; w }

let mutate rng ~links ~horizon plan =
  if links = [] then invalid_arg "Plan.mutate: no links";
  if not (horizon > 0.0) then invalid_arg "Plan.mutate: non-positive horizon";
  let links = Array.of_list links in
  let cap = mutation_horizon_factor *. horizon in
  let n = List.length plan in
  let add () =
    let at = Rng.int rng (n + 1) in
    let ep = draw_episode rng ~links ~horizon in
    List.concat
      [
        List.filteri (fun i _ -> i < at) plan;
        [ ep ];
        List.filteri (fun i _ -> i >= at) plan;
      ]
  in
  let mutate_nth f =
    let at = Rng.int rng n in
    List.mapi (fun i s -> if i = at then f s else s) plan
  in
  if n = 0 then add ()
  else
    match Rng.int rng 6 with
    | 0 -> add ()
    | 1 ->
      let at = Rng.int rng n in
      List.filteri (fun i _ -> i <> at) plan
    | 2 -> mutate_nth (widen_spec rng ~cap)
    | 3 -> mutate_nth (shift_spec rng ~horizon ~cap)
    | 4 -> mutate_nth (perturb_spec rng ~cap)
    | _ -> mutate_nth (retarget_spec rng ~links)

(* Shortest decimal that parses back to exactly the same float, so
   [to_string] is both human-readable and a lossless serialization
   (the chaos corpus round-trips plans through files). *)
let float_repr x =
  if x = infinity then "inf"
  else
    let s = Printf.sprintf "%.15g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let window_string w =
  Printf.sprintf "[%s, %s)" (float_repr w.from_s) (float_repr w.until_s)

let spec_string = function
  | Link_down { u; v; w } ->
    Printf.sprintf "link %d-%d down %s" u v (window_string w)
  | Link_loss { u; v; w; prob } ->
    Printf.sprintf "link %d-%d loss p=%s %s" u v (float_repr prob)
      (window_string w)
  | Link_corrupt { u; v; w; prob } ->
    Printf.sprintf "link %d-%d corrupt p=%s %s" u v (float_repr prob)
      (window_string w)
  | Latency_spike { u; v; w; extra_s } ->
    Printf.sprintf "link %d-%d latency +%ss %s" u v (float_repr extra_s)
      (window_string w)
  | Node_crash { node; w } ->
    Printf.sprintf "node %d crash %s" node (window_string w)
  | Middlebox_break { node; w; covert } ->
    Printf.sprintf "middlebox %d %s %s" node
      (if covert then "covert" else "revealing")
      (window_string w)
  | Gray_loss { u; v; w; prob } ->
    Printf.sprintf "link %d-%d gray p=%s %s" u v (float_repr prob)
      (window_string w)
  | Unidirectional_down { u; v; w } ->
    Printf.sprintf "link %d->%d down %s" u v (window_string w)
  | Link_flap { u; v; w; period_s; duty } ->
    Printf.sprintf "link %d-%d flap period=%ss duty=%s %s" u v
      (float_repr period_s) (float_repr duty) (window_string w)
  | Blackhole { node; w } ->
    Printf.sprintf "node %d blackhole %s" node (window_string w)

let to_string plan = String.concat "\n" (List.map spec_string plan)

(* ---------- parsing (the inverse of [to_string], line by line) ---------- *)

let parse_float what s =
  match float_of_string_opt s with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let strip_affix ~prefix ~suffix what tok =
  let n = String.length tok in
  let pl = String.length prefix and sl = String.length suffix in
  if n > pl + sl
     && String.sub tok 0 pl = prefix
     && String.sub tok (n - sl) sl = suffix
  then Ok (String.sub tok pl (n - pl - sl))
  else Error (Printf.sprintf "bad %s %S" what tok)

(* "[from, until)" arrives as the two tokens "[from," and "until)". *)
let parse_window ta tb =
  let ( let* ) = Result.bind in
  let* sa = strip_affix ~prefix:"[" ~suffix:"," "window start" ta in
  let* sb = strip_affix ~prefix:"" ~suffix:")" "window end" tb in
  let* from_s = parse_float "window start" sa in
  let* until_s = parse_float "window end" sb in
  Ok { from_s; until_s }

let parse_pair tok =
  match String.split_on_char '-' tok with
  | [ a; b ] -> begin
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some u, Some v -> Ok (u, v)
    | _ -> Error (Printf.sprintf "bad link endpoints %S" tok)
  end
  | _ -> Error (Printf.sprintf "bad link endpoints %S" tok)

(* "u->v": the directed endpoint form Unidirectional_down renders. *)
let parse_directed_pair tok =
  match String.index_opt tok '>' with
  | Some i when i > 0 && tok.[i - 1] = '-' -> begin
    let a = String.sub tok 0 (i - 1) in
    let b = String.sub tok (i + 1) (String.length tok - i - 1) in
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some u, Some v -> Some (u, v)
    | _ -> None
  end
  | _ -> None

let parse_int what tok =
  match int_of_string_opt tok with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad %s %S" what tok)

let parse_spec line =
  let ( let* ) = Result.bind in
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' line)
  in
  match tokens with
  | [ "link"; uv; "down"; ta; tb ] -> begin
    match parse_directed_pair uv with
    | Some (u, v) ->
      let* w = parse_window ta tb in
      Ok (Unidirectional_down { u; v; w })
    | None ->
      let* u, v = parse_pair uv in
      let* w = parse_window ta tb in
      Ok (Link_down { u; v; w })
  end
  | [ "link"; uv; "loss"; p; ta; tb ] ->
    let* u, v = parse_pair uv in
    let* ps = strip_affix ~prefix:"p=" ~suffix:"" "loss probability" p in
    let* prob = parse_float "loss probability" ps in
    let* w = parse_window ta tb in
    Ok (Link_loss { u; v; w; prob })
  | [ "link"; uv; "corrupt"; p; ta; tb ] ->
    let* u, v = parse_pair uv in
    let* ps = strip_affix ~prefix:"p=" ~suffix:"" "corrupt probability" p in
    let* prob = parse_float "corrupt probability" ps in
    let* w = parse_window ta tb in
    Ok (Link_corrupt { u; v; w; prob })
  | [ "link"; uv; "latency"; x; ta; tb ] ->
    let* u, v = parse_pair uv in
    let* xs = strip_affix ~prefix:"+" ~suffix:"s" "latency spike" x in
    let* extra_s = parse_float "latency spike" xs in
    let* w = parse_window ta tb in
    Ok (Latency_spike { u; v; w; extra_s })
  | [ "link"; uv; "gray"; p; ta; tb ] ->
    let* u, v = parse_pair uv in
    let* ps = strip_affix ~prefix:"p=" ~suffix:"" "gray probability" p in
    let* prob = parse_float "gray probability" ps in
    let* w = parse_window ta tb in
    Ok (Gray_loss { u; v; w; prob })
  | [ "link"; uv; "flap"; per; duty; ta; tb ] ->
    let* u, v = parse_pair uv in
    let* pers = strip_affix ~prefix:"period=" ~suffix:"s" "flap period" per in
    let* period_s = parse_float "flap period" pers in
    let* dutys = strip_affix ~prefix:"duty=" ~suffix:"" "flap duty" duty in
    let* duty = parse_float "flap duty" dutys in
    let* w = parse_window ta tb in
    Ok (Link_flap { u; v; w; period_s; duty })
  | [ "node"; n; "blackhole"; ta; tb ] ->
    let* node = parse_int "node" n in
    let* w = parse_window ta tb in
    Ok (Blackhole { node; w })
  | [ "node"; n; "crash"; ta; tb ] ->
    let* node = parse_int "node" n in
    let* w = parse_window ta tb in
    Ok (Node_crash { node; w })
  | [ "middlebox"; n; mode; ta; tb ] ->
    let* node = parse_int "node" n in
    let* covert =
      match mode with
      | "covert" -> Ok true
      | "revealing" -> Ok false
      | other -> Error (Printf.sprintf "bad middlebox mode %S" other)
    in
    let* w = parse_window ta tb in
    Ok (Middlebox_break { node; w; covert })
  | _ -> Error (Printf.sprintf "unrecognized episode %S" line)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1) rest
      else begin
        match parse_spec trimmed with
        | Ok spec -> go (spec :: acc) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      end
  in
  go [] 1 lines
