module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Flight = Tussle_obs.Flight
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Link = Tussle_netsim.Link
module Middlebox = Tussle_netsim.Middlebox

(* Every link object carrying traffic between u and v, either direction.
   [Topology.to_links] gives each direction its own [Link.t] while
   [Graph.add_undirected] can share one label both ways, so dedup by
   physical identity to apply each fault exactly once per object. *)
let links_between g u v =
  let acc = ref [] in
  Graph.iter_edges g (fun a b l ->
      if ((a = u && b = v) || (a = v && b = u)) && not (List.memq l !acc)
      then acc := l :: !acc);
  if !acc = [] then
    invalid_arg
      (Printf.sprintf "Inject.install: no link between %d and %d" u v);
  List.rev !acc

(* Only the links carrying u->v traffic: the directed subset of
   [links_between].  With per-direction link objects (Topology.to_links)
   this isolates one direction; a shared undirected label is returned
   once and — unavoidably — faults both directions. *)
let links_from g u v =
  let acc = ref [] in
  Graph.iter_edges g (fun a b l ->
      if a = u && b = v && not (List.memq l !acc) then acc := l :: !acc);
  if !acc = [] then
    invalid_arg
      (Printf.sprintf "Inject.install: no link from %d to %d" u v);
  List.rev !acc

let links_incident g node =
  let acc = ref [] in
  Graph.iter_edges g (fun a b l ->
      if (a = node || b = node) && not (List.memq l !acc) then
        acc := l :: !acc);
  if !acc = [] then
    invalid_arg
      (Printf.sprintf "Inject.install: node %d has no incident links" node);
  List.rev !acc

let schedule_window engine (w : Plan.window) ~on_open ~on_close =
  if w.Plan.from_s < Engine.now engine then
    invalid_arg "Inject.install: window opens in the engine's past";
  ignore (Engine.schedule engine w.Plan.from_s (fun _ -> on_open ()));
  if Float.is_finite w.Plan.until_s then
    ignore (Engine.schedule engine w.Plan.until_s (fun _ -> on_close ()))

(* Episode boundaries land in the flight recorder's control-plane
   stream (flow = [Flight.control_flow]) so a narrative can interleave
   "fault opened/closed" with the drops it caused.  [value] carries the
   episode's index in the plan, [detail] its [Plan.spec_string]. *)
let located = function
  | Plan.Link_down { u; v; _ }
  | Plan.Link_loss { u; v; _ }
  | Plan.Link_corrupt { u; v; _ }
  | Plan.Latency_spike { u; v; _ }
  | Plan.Gray_loss { u; v; _ }
  | Plan.Unidirectional_down { u; v; _ }
  | Plan.Link_flap { u; v; _ } ->
    (u, v)
  | Plan.Node_crash { node; _ }
  | Plan.Middlebox_break { node; _ }
  | Plan.Blackhole { node; _ } ->
    (node, -1)

let install ~seed ~plan engine net =
  Plan.validate plan;
  let g = Net.links net in
  let rng = Rng.create seed in
  List.iteri
    (fun idx spec ->
      let node, peer = located spec in
      let record kind () =
        if Flight.enabled () then
          Flight.emit ~sim_t:(Engine.now engine) ~flow:Flight.control_flow
            ~node ~peer ~detail:(Plan.spec_string spec)
            ~value:(float_of_int idx) kind
      in
      let windowed w ~on_open ~on_close =
        schedule_window engine w
          ~on_open:(fun () ->
            record "fault-open" ();
            on_open ())
          ~on_close:(fun () ->
            record "fault-close" ();
            on_close ())
      in
      match (spec : Plan.spec) with
      | Plan.Link_down { u; v; w } ->
        let ls = links_between g u v in
        windowed w
          ~on_open:(fun () -> List.iter (fun l -> Link.set_up l false) ls)
          ~on_close:(fun () -> List.iter (fun l -> Link.set_up l true) ls)
      | Plan.Link_loss { u; v; w; prob } ->
        let ls = links_between g u v in
        let episode_rng = Rng.split rng in
        windowed w
          ~on_open:(fun () ->
            List.iter
              (fun l ->
                Link.set_fault_rng l episode_rng;
                Link.set_loss_prob l prob)
              ls)
          ~on_close:(fun () ->
            List.iter (fun l -> Link.set_loss_prob l 0.0) ls)
      | Plan.Link_corrupt { u; v; w; prob } ->
        let ls = links_between g u v in
        let episode_rng = Rng.split rng in
        windowed w
          ~on_open:(fun () ->
            List.iter
              (fun l ->
                Link.set_fault_rng l episode_rng;
                Link.set_corrupt_prob l prob)
              ls)
          ~on_close:(fun () ->
            List.iter (fun l -> Link.set_corrupt_prob l 0.0) ls)
      | Plan.Latency_spike { u; v; w; extra_s } ->
        let ls = links_between g u v in
        windowed w
          ~on_open:(fun () ->
            List.iter (fun l -> Link.set_extra_latency l extra_s) ls)
          ~on_close:(fun () ->
            List.iter (fun l -> Link.set_extra_latency l 0.0) ls)
      | Plan.Node_crash { node; w } ->
        let ls = links_incident g node in
        windowed w
          ~on_open:(fun () -> List.iter (fun l -> Link.set_up l false) ls)
          ~on_close:(fun () -> List.iter (fun l -> Link.set_up l true) ls)
      | Plan.Gray_loss { u; v; w; prob } ->
        let ls = links_between g u v in
        let episode_rng = Rng.split rng in
        windowed w
          ~on_open:(fun () ->
            List.iter
              (fun l ->
                Link.set_fault_rng l episode_rng;
                Link.set_gray_loss_prob l prob)
              ls)
          ~on_close:(fun () ->
            List.iter (fun l -> Link.set_gray_loss_prob l 0.0) ls)
      | Plan.Unidirectional_down { u; v; w } ->
        let ls = links_from g u v in
        windowed w
          ~on_open:(fun () -> List.iter (fun l -> Link.set_up l false) ls)
          ~on_close:(fun () -> List.iter (fun l -> Link.set_up l true) ls)
      | Plan.Link_flap { u; v; w; period_s; duty } ->
        (* Deterministic toggle schedule, compiled up front: down at
           [from + k*period], up [duty*period] later when that lands
           inside the window, and an unconditional restore at window
           close.  Each toggle is its own flight event, so a narrative
           can count the flaps a damped control plane absorbed. *)
        let ls = links_between g u v in
        if w.Plan.from_s < Engine.now engine then
          invalid_arg "Inject.install: window opens in the engine's past";
        let toggle up_state kind t =
          ignore
            (Engine.schedule engine t (fun _ ->
                 record kind ();
                 List.iter (fun l -> Link.set_up l up_state) ls))
        in
        let k = ref 0 in
        let continue = ref true in
        while !continue do
          let down = w.Plan.from_s +. (period_s *. float_of_int !k) in
          if down < w.Plan.until_s then begin
            toggle false "fault-open" down;
            let up = down +. (duty *. period_s) in
            if up < w.Plan.until_s then toggle true "fault-close" up;
            incr k
          end
          else continue := false
        done;
        toggle true "fault-close" w.Plan.until_s
      | Plan.Blackhole { node; w } ->
        if node < 0 || node >= Graph.node_count g then
          invalid_arg "Inject.install: blackhole node out of range";
        windowed w
          ~on_open:(fun () -> Net.set_blackhole net node true)
          ~on_close:(fun () -> Net.set_blackhole net node false)
      | Plan.Middlebox_break { node; w; covert } ->
        if node < 0 || node >= Graph.node_count g then
          invalid_arg "Inject.install: middlebox node out of range";
        let active = ref false in
        let mb =
          Middlebox.make ~reveals_presence:(not covert)
            ~name:Plan.broken_device_name (fun _ ->
              if !active then Middlebox.Drop else Middlebox.Forward)
        in
        Net.add_middlebox net node mb;
        windowed w
          ~on_open:(fun () -> active := true)
          ~on_close:(fun () -> active := false))
    plan
