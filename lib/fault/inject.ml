module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Link = Tussle_netsim.Link
module Middlebox = Tussle_netsim.Middlebox

(* Every link object carrying traffic between u and v, either direction.
   [Topology.to_links] gives each direction its own [Link.t] while
   [Graph.add_undirected] can share one label both ways, so dedup by
   physical identity to apply each fault exactly once per object. *)
let links_between g u v =
  let acc = ref [] in
  Graph.iter_edges g (fun a b l ->
      if ((a = u && b = v) || (a = v && b = u)) && not (List.memq l !acc)
      then acc := l :: !acc);
  if !acc = [] then
    invalid_arg
      (Printf.sprintf "Inject.install: no link between %d and %d" u v);
  List.rev !acc

let links_incident g node =
  let acc = ref [] in
  Graph.iter_edges g (fun a b l ->
      if (a = node || b = node) && not (List.memq l !acc) then
        acc := l :: !acc);
  if !acc = [] then
    invalid_arg
      (Printf.sprintf "Inject.install: node %d has no incident links" node);
  List.rev !acc

let schedule_window engine (w : Plan.window) ~on_open ~on_close =
  if w.Plan.from_s < Engine.now engine then
    invalid_arg "Inject.install: window opens in the engine's past";
  ignore (Engine.schedule engine w.Plan.from_s (fun _ -> on_open ()));
  if Float.is_finite w.Plan.until_s then
    ignore (Engine.schedule engine w.Plan.until_s (fun _ -> on_close ()))

let install ~seed ~plan engine net =
  Plan.validate plan;
  let g = Net.links net in
  let rng = Rng.create seed in
  List.iter
    (fun spec ->
      match (spec : Plan.spec) with
      | Plan.Link_down { u; v; w } ->
        let ls = links_between g u v in
        schedule_window engine w
          ~on_open:(fun () -> List.iter (fun l -> Link.set_up l false) ls)
          ~on_close:(fun () -> List.iter (fun l -> Link.set_up l true) ls)
      | Plan.Link_loss { u; v; w; prob } ->
        let ls = links_between g u v in
        let episode_rng = Rng.split rng in
        schedule_window engine w
          ~on_open:(fun () ->
            List.iter
              (fun l ->
                Link.set_fault_rng l episode_rng;
                Link.set_loss_prob l prob)
              ls)
          ~on_close:(fun () ->
            List.iter (fun l -> Link.set_loss_prob l 0.0) ls)
      | Plan.Link_corrupt { u; v; w; prob } ->
        let ls = links_between g u v in
        let episode_rng = Rng.split rng in
        schedule_window engine w
          ~on_open:(fun () ->
            List.iter
              (fun l ->
                Link.set_fault_rng l episode_rng;
                Link.set_corrupt_prob l prob)
              ls)
          ~on_close:(fun () ->
            List.iter (fun l -> Link.set_corrupt_prob l 0.0) ls)
      | Plan.Latency_spike { u; v; w; extra_s } ->
        let ls = links_between g u v in
        schedule_window engine w
          ~on_open:(fun () ->
            List.iter (fun l -> Link.set_extra_latency l extra_s) ls)
          ~on_close:(fun () ->
            List.iter (fun l -> Link.set_extra_latency l 0.0) ls)
      | Plan.Node_crash { node; w } ->
        let ls = links_incident g node in
        schedule_window engine w
          ~on_open:(fun () -> List.iter (fun l -> Link.set_up l false) ls)
          ~on_close:(fun () -> List.iter (fun l -> Link.set_up l true) ls)
      | Plan.Middlebox_break { node; w; covert } ->
        if node < 0 || node >= Graph.node_count g then
          invalid_arg "Inject.install: middlebox node out of range";
        let active = ref false in
        let mb =
          Middlebox.make ~reveals_presence:(not covert)
            ~name:Plan.broken_device_name (fun _ ->
              if !active then Middlebox.Drop else Middlebox.Forward)
        in
        Net.add_middlebox net node mb;
        schedule_window engine w
          ~on_open:(fun () -> active := true)
          ~on_close:(fun () -> active := false))
    plan
