module Rng = Tussle_prelude.Rng
module Stats = Tussle_prelude.Stats

type config = {
  n_consumers : int;
  n_providers : int;
  wtp : float;
  transport_cost : float;
  switching_cost : float;
  provider_cost : float;
  periods : int;
  price_floor : float;
  price_ceiling : float;
  price_step : float;
}

let default_config =
  {
    n_consumers = 600;
    n_providers = 4;
    wtp = 10.0;
    transport_cost = 2.0;
    switching_cost = 0.0;
    provider_cost = 1.0;
    periods = 30;
    price_floor = 0.0;
    price_ceiling = 10.0;
    price_step = 0.1;
  }

type result = {
  mean_price : float;
  mean_markup : float;
  churn_rate : float;
  consumer_surplus : float;
  provider_profit : float;
  hhi : float;
  subscribed_ratio : float;
  price_history : float array;
}

let validate cfg =
  if cfg.n_consumers <= 0 then invalid_arg "Market: no consumers";
  if cfg.n_providers <= 0 then invalid_arg "Market: no providers";
  if cfg.periods <= 0 then invalid_arg "Market: no periods";
  if cfg.price_step <= 0.0 then invalid_arg "Market: non-positive price step";
  if cfg.price_ceiling < cfg.price_floor then invalid_arg "Market: empty grid";
  if cfg.provider_cost < 0.0 || cfg.transport_cost < 0.0
     || cfg.switching_cost < 0.0
  then invalid_arg "Market: negative cost"

let[@inline] circle_distance a b =
  let d = Float.abs (a -. b) in
  Float.min d (1.0 -. d)

let price_grid cfg =
  (* Rounding (not truncating) the span/step quotient keeps awkward
     steps like 0.1 from losing the top point to float error, and the
     last element is pinned to [price_ceiling] exactly so a monopolist
     facing slack WTP can actually post the ceiling.  For steps that do
     not divide the span the final interval is shorter than [step];
     every interior point stays strictly below the ceiling because
     [count <= span/step + 1/2] implies [floor + (count-1)*step < ceiling]. *)
  let count =
    int_of_float
      (Float.round ((cfg.price_ceiling -. cfg.price_floor) /. cfg.price_step))
  in
  let count = if count < 0 then 0 else count in
  Array.init (count + 1) (fun i ->
      if i = count then cfg.price_ceiling
      else cfg.price_floor +. (float_of_int i *. cfg.price_step))

let nearest_grid_index cfg ~grid_len p =
  let i =
    int_of_float (Float.round ((p -. cfg.price_floor) /. cfg.price_step))
  in
  if i < 0 then 0 else if i > grid_len - 1 then grid_len - 1 else i

let salop_price cfg =
  cfg.provider_cost +. (cfg.transport_cost /. float_of_int cfg.n_providers)

(* Largest grid index whose price is strictly below [t] ([-1] when
   none).  [est] is a closed-form estimate from the uniform spacing;
   the bounded fix-up loops make the answer exact against the actual
   grid values (the last point is pinned to the ceiling, and float
   rounding can push the estimate off by one). *)
let[@inline] last_lt grid g est t =
  let i = ref (if est < -1 then -1 else if est > g - 1 then g - 1 else est) in
  while !i + 1 < g && Array.unsafe_get grid (!i + 1) < t do
    incr i
  done;
  while !i >= 0 && Array.unsafe_get grid !i >= t do
    decr i
  done;
  !i

(* The hot path is struct-of-arrays with preallocated scratch: no
   per-consumer options, tuples or closures anywhere in the period
   loop.  Per period we build a flat [base] matrix
   [base.(k*n + c) = wtp - transport_cost * d(c,k) - switch_pain(c,k)]
   (the price-independent part of consumer [c]'s utility from provider
   [k], given the subscriptions entering the period), so a utility is
   one load and one subtract.

   Best response is where the old code burned its time: re-choosing
   every consumer for every candidate price was O(n * m) per grid
   point.  Instead, for provider [j] we compute each consumer's best
   alternative [alt] among the other providers once; [c] buys from [j]
   at price [p] iff [base_j(c) - p] strictly beats [max(0, alt)], which
   is a price threshold per consumer.  Bucketing thresholds onto the
   grid and suffix-summing gives demand at *every* grid price in
   O(n + grid), so a full best response is O(n*m + grid) instead of
   O(n*m*grid).  (At an exact float tie between [j] and an alternative
   the threshold is conservative where the choice pass breaks ties by
   provider index — a measure-zero knife edge that only shifts the
   demand estimate by the tied consumers.) *)
let run rng cfg =
  validate cfg;
  let n = cfg.n_consumers and m = cfg.n_providers in
  let wtp = cfg.wtp
  and tc = cfg.transport_cost
  and sc = cfg.switching_cost
  and cost = cfg.provider_cost in
  let grid = price_grid cfg in
  let g = Array.length grid in
  let inv_step = 1.0 /. cfg.price_step in
  let floor_p = cfg.price_floor in
  let consumer_pos = Array.init n (fun _ -> Rng.float rng 1.0) in
  let provider_pos =
    Array.init m (fun j -> float_of_int j /. float_of_int m)
  in
  (* Anchor prices on the grid: the textbook Salop price (e.g. 1.125
     for 16 providers) is generally not a grid point, and an off-grid
     incumbent price could otherwise persist forever as the
     best-response candidate the grid cannot express. *)
  let init_idx = nearest_grid_index cfg ~grid_len:g (salop_price cfg) in
  let price_idx = Array.make m init_idx in
  let prices = Array.make m grid.(init_idx) in
  let current = Array.make n (-1) in
  (* scratch, allocated once per run *)
  let base = Array.make (m * n) 0.0 in
  let alt_u = Array.make n 0.0 in
  let best_u = Array.make n 0.0 in
  let best_j = Array.make n (-1) in
  let hist = Array.make g 0 in
  let last_subs = Array.make m 0 in
  let price_history = Array.make cfg.periods 0.0 in
  let acc = Array.make 2 0.0 in
  (* acc.(0) surplus, acc.(1) profit: final-period accumulators kept in
     a float array so the loop stays allocation-free (a float ref would
     box every update) *)
  let warmup = cfg.periods / 3 in
  let switches = ref 0 in
  let choice_periods = ref 0 in
  (* Once a period ends with no price move and no subscription move,
     every later period sees identical inputs (base depends only on
     subscriptions, best response only on base and prices), so its
     outputs are identical too: replay it for free instead of
     recomputing.  Exact memoization, not an approximation. *)
  let stable = ref false in
  for period = 0 to cfg.periods - 1 do
    if !stable then begin
      if period >= warmup then incr choice_periods;
      price_history.(period) <- price_history.(period - 1)
    end
    else begin
    (* price-independent utility parts, given current subscriptions *)
    for k = 0 to m - 1 do
      let ppos = Array.unsafe_get provider_pos k in
      let off = k * n in
      for c = 0 to n - 1 do
        let d = circle_distance (Array.unsafe_get consumer_pos c) ppos in
        let cur = Array.unsafe_get current c in
        let pain = if cur >= 0 && cur <> k then sc else 0.0 in
        Array.unsafe_set base (off + c) (wtp -. (tc *. d) -. pain)
      done
    done;
    (* providers best-respond in turn *)
    let price_moved = ref false in
    for j = 0 to m - 1 do
      (* best alternative utility per consumer among k <> j: the
         outside option 0 is folded in, so the scratch can seed at 0
         and a single running max suffices *)
      Array.fill alt_u 0 n 0.0;
      for k = 0 to m - 1 do
        if k <> j then begin
          let pk = Array.unsafe_get prices k in
          let off = k * n in
          for c = 0 to n - 1 do
            let u = Array.unsafe_get base (off + c) -. pk in
            if u > Array.unsafe_get alt_u c then Array.unsafe_set alt_u c u
          done
        end
      done;
      (* bucket each consumer's willingness threshold onto the grid:
         c buys from j at price p iff base_j(c) - p > max(0, alt) *)
      Array.fill hist 0 g 0;
      let offj = j * n in
      for c = 0 to n - 1 do
        let t = Array.unsafe_get base (offj + c) -. Array.unsafe_get alt_u c in
        let est = int_of_float (Float.ceil ((t -. floor_p) *. inv_step)) - 1 in
        let imax = last_lt grid g est t in
        if imax >= 0 then
          Array.unsafe_set hist imax (Array.unsafe_get hist imax + 1)
      done;
      (* suffix-sum: hist.(i) becomes demand at grid price i *)
      for i = g - 2 downto 0 do
        Array.unsafe_set hist i
          (Array.unsafe_get hist i + Array.unsafe_get hist (i + 1))
      done;
      (* scan the grid, incumbent price as the initial candidate *)
      let bi = ref price_idx.(j) in
      let bprofit = ref 0.0 in
      bprofit := float_of_int hist.(!bi) *. (grid.(!bi) -. cost);
      for i = 0 to g - 1 do
        let pr =
          float_of_int (Array.unsafe_get hist i)
          *. (Array.unsafe_get grid i -. cost)
        in
        if pr > !bprofit +. 1e-9 then begin
          bprofit := pr;
          bi := i
        end
      done;
      if !bi <> price_idx.(j) then begin
        price_moved := true;
        price_idx.(j) <- !bi;
        prices.(j) <- grid.(!bi)
      end
    done;
    (* consumers choose: fused utility/choose writing into the
       reusable best_j/best_u scratch (base is price-independent and
       still valid: subscriptions only change below) *)
    Array.fill best_j 0 n (-1);
    for k = 0 to m - 1 do
      let pk = Array.unsafe_get prices k in
      let off = k * n in
      for c = 0 to n - 1 do
        let u = Array.unsafe_get base (off + c) -. pk in
        if
          u > 0.0
          && (Array.unsafe_get best_j c = -1 || u > Array.unsafe_get best_u c)
        then begin
          Array.unsafe_set best_u c u;
          Array.unsafe_set best_j c k
        end
      done
    done;
    let counting = period >= warmup in
    if counting then incr choice_periods;
    Array.fill last_subs 0 m 0;
    acc.(0) <- 0.0;
    acc.(1) <- 0.0;
    let subs_moved = ref false in
    for c = 0 to n - 1 do
      let bj = Array.unsafe_get best_j c in
      let cur = Array.unsafe_get current c in
      if bj <> cur then begin
        subs_moved := true;
        if counting && bj >= 0 && cur >= 0 then incr switches;
        Array.unsafe_set current c bj
      end;
      if bj >= 0 then begin
        Array.unsafe_set last_subs bj (Array.unsafe_get last_subs bj + 1);
        acc.(0) <- acc.(0) +. Array.unsafe_get best_u c;
        acc.(1) <- acc.(1) +. (Array.unsafe_get prices bj -. cost)
      end
    done;
    price_history.(period) <- Stats.mean prices;
    stable := not (!price_moved || !subs_moved)
    end
  done;
  (* the best-response scan only ever posts grid members *)
  Array.iteri
    (fun j p ->
      assert (p = grid.(price_idx.(j)));
      assert (p >= cfg.price_floor && p <= cfg.price_ceiling))
    prices;
  let subscribed =
    Array.fold_left (fun n c -> if c >= 0 then n + 1 else n) 0 current
  in
  let share_sizes =
    Array.of_list
      (List.filter
         (fun x -> x > 0.0)
         (Array.to_list (Array.map float_of_int last_subs)))
  in
  {
    mean_price = Stats.mean prices;
    mean_markup = Stats.mean prices -. cfg.provider_cost;
    churn_rate =
      (if !choice_periods = 0 then 0.0
       else float_of_int !switches /. float_of_int (n * !choice_periods));
    consumer_surplus = acc.(0);
    provider_profit = acc.(1);
    hhi = (if Array.length share_sizes = 0 then 0.0 else Stats.hhi share_sizes);
    subscribed_ratio = float_of_int subscribed /. float_of_int n;
    price_history;
  }
