(** Access-provider market: competition, switching costs, lock-in.

    The model is a Salop circular market — the workhorse model of
    competition among differentiated providers — extended with consumer
    switching costs, which is exactly the lever of the paper's
    provider-lock-in tussle (§V-A1): provider-based addressing makes
    renumbering (= switching) costly; portable addressing / DHCP +
    dynamic DNS make it cheap.

    Consumers sit on a unit circle (taste/location); each provider sits
    at a point and posts a price.  A consumer's per-period utility from
    provider [j] is

    [wtp - price_j - transport_cost * distance(c, j) - (switching_cost
    if j differs from the current provider)]

    and the outside option is 0.  Each period every provider
    best-responds on a price grid to the others' current prices
    (anticipating consumer choice), then consumers re-choose.  With
    symmetric providers and zero switching cost this converges near the
    textbook Salop equilibrium [price = cost + transport_cost / n]; with
    switching costs, incumbents price up to the lock-in and churn
    dies. *)

type config = {
  n_consumers : int;
  n_providers : int;
  wtp : float;  (** reservation utility per period *)
  transport_cost : float;
  switching_cost : float;
  provider_cost : float;  (** marginal cost per subscriber-period *)
  periods : int;
  price_floor : float;
  price_ceiling : float;
  price_step : float;  (** best-response grid resolution *)
}

val default_config : config
(** 600 consumers, 4 providers, wtp 10, transport 2, no switching cost,
    cost 1, 30 periods, grid 0..10 step 0.1. *)

type result = {
  mean_price : float;  (** across providers, final period *)
  mean_markup : float;  (** mean_price - provider_cost *)
  churn_rate : float;  (** switches per consumer-period after warmup *)
  consumer_surplus : float;  (** total surplus per period, final period *)
  provider_profit : float;  (** total profit per period, final period *)
  hhi : float;  (** subscriber concentration, final period *)
  subscribed_ratio : float;  (** consumers with any provider at the end *)
  price_history : float array;  (** mean price per period *)
}

val run : Tussle_prelude.Rng.t -> config -> result
(** Simulate to the horizon.  Raises [Invalid_argument] on nonsensical
    configs (no providers, empty grid, negative costs...).

    The period loop is struct-of-arrays with preallocated scratch
    (int-indexed consumers/providers, a flat utility-base matrix, a
    demand histogram over the price grid), so a run allocates O(n*m)
    once up front and nothing per period: at the default n=600 this is
    ~1000x less GC allocation than the per-candidate [choose] loop it
    replaced, and 10^5-10^6 consumers are practical.  Initial prices
    are snapped to the nearest grid point (the textbook Salop anchor is
    generally off-grid) and every posted price is a [price_grid]
    member. *)

val price_grid : config -> float array
(** The best-response price grid: [price_floor] upward in [price_step]
    increments, with the last element pinned to [price_ceiling] exactly
    (for steps that do not divide the span the final interval is
    shorter than [price_step]).  Validated configs always yield a
    non-empty, sorted grid whose first element is [price_floor]. *)

val salop_price : config -> float
(** The textbook benchmark [provider_cost +. transport_cost /.
    n_providers] for comparison with simulated outcomes. *)
