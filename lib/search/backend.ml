(* Shared vocabulary of the adversarial search: the candidate/outcome
   types, the (seed, index) -> rng derivation, the evaluation oracle,
   and the violation-resolution pipeline (shrink, then persist) that
   every backend funnels its findings through.  Backends implement
   [BACKEND]; smarter solvers slot in beside Mutate/Exhaust by
   implementing the same signature. *)

module Rng = Tussle_prelude.Rng
module Pool = Tussle_prelude.Pool
module Plan = Tussle_fault.Plan
module Scenario = Tussle_chaos.Scenario
module Invariant = Tussle_chaos.Invariant
module Signature = Tussle_chaos.Signature
module Corpus = Tussle_chaos.Corpus
module Shrink = Tussle_chaos.Shrink
module Sweep = Tussle_chaos.Sweep

type found = {
  scenario : string;
  seed : int;  (* injection seed the violation reproduces with *)
  plan : Plan.t;  (* as found *)
  minimal : Plan.t;  (* 1-minimal, via the chaos delta-debugger *)
  violations : Invariant.violation list;
  file : string option;  (* corpus path, when persistence is on *)
  fresh : bool;  (* the corpus file was newly created, not a dedup hit *)
}

type outcome = {
  backend : string;
  runs : int;
  seeded : int;
  space : int;  (* 0 for open-ended backends *)
  certified : bool;
  frontier : int list;  (* cumulative distinct signatures, per batch *)
  found : found list;
}

(* Same derivation as the chaos sweep: everything a candidate does is
   a pure function of (master seed, global candidate index), which is
   what makes the search byte-identical across --domains. *)
let candidate_rng ~seed index = Rng.create (seed + (7919 * (index + 1)))

(* The oracle: run the scenario under the plan and check the whole
   invariant registry; the signature is the coverage signal. *)
let evaluate (s : Scenario.t) ~seed plan =
  let obs = s.Scenario.run ~seed ~plan in
  (Invariant.check obs, Signature.of_obs obs)

(* A violating plan is worth keeping only in its 1-minimal form; the
   corpus dedupes by (scenario, plan text) so a re-found violation
   points at the existing file instead of creating a second one. *)
let resolve ?corpus_dir (s : Scenario.t) ~seed ~plan violations =
  let minimal = Shrink.shrink ~still_fails:(Sweep.still_fails s ~seed) plan in
  let file, fresh =
    match corpus_dir with
    | None -> (None, false)
    | Some dir ->
      let entry = { Corpus.scenario = s.Scenario.name; seed; plan = minimal } in
      (match Corpus.find_duplicate ~dir entry with
      | Some path -> (Some path, false)
      | None -> (Some (Corpus.save ~dir entry), true))
  in
  { scenario = s.Scenario.name; seed; plan; minimal; violations; file; fresh }

(* Distinct reproducers only: different found plans can shrink to the
   same 1-minimal plan, and the report should list that bug once. *)
let dedupe_found fs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun f ->
      let key = (f.scenario, Plan.to_string f.minimal) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    fs

module type BACKEND = sig
  val name : string

  val search :
    ?domains:int ->
    ?corpus_dir:string ->
    ?seeds:Corpus.entry list ->
    scenarios:Scenario.t list ->
    seed:int ->
    budget:int ->
    unit ->
    outcome
  (* Evaluate up to [budget] plans against [scenarios], deriving all
     randomness from [(seed, index)].  [seeds] primes backends that
     use a corpus; [corpus_dir] enables persistence of new 1-minimal
     reproducers.  Raises [Invalid_argument] on [budget < 1] or an
     empty scenario list. *)
end
