(* Backend dispatch + report assembly: load the seed corpus, run the
   named backend over the chaos scenario registry, and package the
   outcome as a `tussle.search-report/1` artifact.  Everything the
   caller prints comes from the report, so the CLI and bench entry
   points emit byte-identical text for the same (backend, seed,
   budget) whatever --domains is. *)

module Plan = Tussle_fault.Plan
module Scenario = Tussle_chaos.Scenario
module Invariant = Tussle_chaos.Invariant
module Corpus = Tussle_chaos.Corpus
module Search_report = Tussle_obs.Search_report

let backend_names = [ Mutate.name; Exhaust.name ]

let backend_of_name name : (module Backend.BACKEND) option =
  if name = Mutate.name then Some (module Mutate)
  else if name = Exhaust.name then Some (module Exhaust)
  else None

let finding_of_found (f : Backend.found) =
  {
    Search_report.scenario = f.Backend.scenario;
    seed = f.Backend.seed;
    found_episodes = List.length f.Backend.plan;
    minimal_plan = Plan.to_string f.Backend.minimal;
    invariants =
      List.map (fun v -> v.Invariant.invariant) f.Backend.violations;
    corpus_file = Option.value ~default:"" f.Backend.file;
  }

let run ?domains ?corpus_dir ?(label = "search") ~backend ~seed ~budget () =
  match backend_of_name backend with
  | None ->
    Error
      (Printf.sprintf "unknown backend %S (expected %s)" backend
         (String.concat " or " backend_names))
  | Some (module B) ->
    let scenarios = Scenario.all in
    let known = List.map (fun s -> s.Scenario.name) scenarios in
    let seeds =
      match corpus_dir with
      | None -> []
      | Some dir ->
        List.filter_map
          (fun (_, r) -> Result.to_option r)
          (Corpus.load_dir ~known dir)
    in
    let o = B.search ?domains ?corpus_dir ~seeds ~scenarios ~seed ~budget () in
    let corpus_added =
      List.length (List.filter (fun f -> f.Backend.fresh) o.Backend.found)
    in
    let report =
      Search_report.make ~label ?corpus_dir ~backend:o.Backend.backend
        ~search_seed:seed ~budget ~runs:o.Backend.runs ~seeded:o.Backend.seeded
        ~space:o.Backend.space ~certified:o.Backend.certified
        ~frontier:o.Backend.frontier ~corpus_added
        (List.map finding_of_found o.Backend.found)
    in
    Ok (report, o)
