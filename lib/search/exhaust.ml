(* The bounded-exhaustive backend.

   A deliberately small plan grammar — per scenario link: Link_down,
   Link_loss p=0.2, Gray_loss p=0.5, Link_flap (period h/4, duty 0.5)
   and each Unidirectional_down direction; per scenario node: a
   Blackhole — all over four quantized windows (from in {0, h/2},
   duration in {h/2, h}) — closed under plans of at most two episodes
   (unordered pairs, so [a;b] and [b;a] are not enumerated twice).
   Enumerating the whole box and finding nothing is a *certificate*:
   no plan in this grammar violates any registered invariant, which is
   a stronger statement than any number of random draws.  Enumeration
   order is fixed (scenario order, then atom order), injection seeds
   derive from (seed, index), and batches are count-based, so output
   is byte-identical across --domains. *)

module Rng = Tussle_prelude.Rng
module Pool = Tussle_prelude.Pool
module Plan = Tussle_fault.Plan
module Scenario = Tussle_chaos.Scenario
module Corpus = Tussle_chaos.Corpus

let name = "exhaust"

let batch = 64

let atoms (s : Scenario.t) =
  let h = s.Scenario.horizon in
  let windows =
    [
      Plan.window 0.0 (0.5 *. h);
      Plan.window 0.0 h;
      Plan.window (0.5 *. h) h;
      Plan.window (0.5 *. h) (1.5 *. h);
    ]
  in
  let link_atoms =
    List.concat_map
      (fun (u, v) ->
        List.concat_map
          (fun w ->
            [
              Plan.Link_down { u; v; w };
              Plan.Link_loss { u; v; w; prob = 0.2 };
              Plan.Gray_loss { u; v; w; prob = 0.5 };
              Plan.Link_flap { u; v; w; period_s = 0.25 *. h; duty = 0.5 };
              Plan.Unidirectional_down { u; v; w };
              Plan.Unidirectional_down { u = v; v = u; w };
            ])
          windows)
      s.Scenario.links
  in
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun (u, v) -> [ u; v ]) s.Scenario.links)
  in
  let node_atoms =
    List.concat_map
      (fun node -> List.map (fun w -> Plan.Blackhole { node; w }) windows)
      nodes
  in
  link_atoms @ node_atoms

let plans s =
  let atoms = Array.of_list (atoms s) in
  let n = Array.length atoms in
  let singles = List.init n (fun i -> [ atoms.(i) ]) in
  let pairs =
    List.concat
      (List.init n (fun i ->
           List.init (n - i) (fun k -> [ atoms.(i); atoms.(i + k) ])))
  in
  [] :: (singles @ pairs)

let space scenarios =
  List.fold_left (fun acc s -> acc + List.length (plans s)) 0 scenarios

let search ?domains ?corpus_dir ?(seeds = []) ~scenarios ~seed ~budget () =
  ignore (seeds : Corpus.entry list);
  if budget < 1 then invalid_arg "Exhaust.search: budget must be >= 1";
  if scenarios = [] then invalid_arg "Exhaust.search: no scenarios";
  let all =
    List.concat_map (fun s -> List.map (fun p -> (s, p)) (plans s)) scenarios
  in
  let space = List.length all in
  let cands =
    List.filteri (fun i _ -> i < budget) all
    |> List.mapi (fun i (s, p) ->
           (s, p, Rng.int (Backend.candidate_rng ~seed i) 1_000_000))
  in
  let seen = Hashtbl.create 64 in
  let found = ref [] and frontier = ref [] and runs = ref 0 in
  let rec go = function
    | [] -> ()
    | cands ->
      let chunk = List.filteri (fun i _ -> i < batch) cands in
      let rest = List.filteri (fun i _ -> i >= batch) cands in
      let results =
        Pool.map ?domains
          (fun (s, plan, inj) -> Backend.evaluate s ~seed:inj plan)
          chunk
      in
      List.iter2
        (fun (s, plan, inj) (violations, sg) ->
          if not (Hashtbl.mem seen sg) then Hashtbl.add seen sg ();
          if violations <> [] then
            found :=
              Backend.resolve ?corpus_dir s ~seed:inj ~plan violations :: !found)
        chunk results;
      runs := !runs + List.length chunk;
      frontier := Hashtbl.length seen :: !frontier;
      go rest
  in
  go cands;
  let found = Backend.dedupe_found (List.rev !found) in
  {
    Backend.backend = name;
    runs = !runs;
    seeded = 0;
    space;
    certified = !runs = space && found = [];
    frontier = List.rev !frontier;
    found;
  }
