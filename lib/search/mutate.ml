(* The coverage-guided mutator.

   Phase 0 evaluates the seed corpus — every usable `chaos/corpus`
   entry plus one fresh `Plan.random` draw per scenario — and admits
   the clean ones into the live corpus.  Each subsequent batch derives
   every candidate purely from (seed, global index) and the live
   corpus as it stood at the batch boundary: pick a parent, apply 1-3
   `Plan.mutate` operators, draw an injection seed, and evaluate on
   `Pool.map`.  A mutant joins the live corpus exactly when its
   behavior signature is unseen; a violating mutant is shrunk and
   persisted instead (crashes are findings, not parents).  Batch
   boundaries are fixed by candidate count, never by wall clock, so
   the whole search is byte-identical across --domains. *)

module Rng = Tussle_prelude.Rng
module Pool = Tussle_prelude.Pool
module Plan = Tussle_fault.Plan
module Scenario = Tussle_chaos.Scenario
module Corpus = Tussle_chaos.Corpus

let name = "mutate"

(* Candidates per generation: small enough that coverage feedback
   steers often, large enough to keep the domain pool busy. *)
let batch = 32

type live = { scenario : Scenario.t; plan : Plan.t }

let search ?domains ?corpus_dir ?(seeds = []) ~scenarios ~seed ~budget () =
  if budget < 1 then invalid_arg "Mutate.search: budget must be >= 1";
  if scenarios = [] then invalid_arg "Mutate.search: no scenarios";
  let find_scenario name =
    List.find_opt (fun s -> s.Scenario.name = name) scenarios
  in
  (* Phase 0 candidate list: corpus entries we have a scenario for,
     then one fresh random draw per scenario.  Truncated to the budget
     and counted against it — seeding is not free. *)
  let seed_cands =
    List.filter_map
      (fun (e : Corpus.entry) ->
        Option.map
          (fun s -> (s, Some e.Corpus.plan))
          (find_scenario e.Corpus.scenario))
      seeds
    @ List.map (fun s -> (s, None)) scenarios
  in
  let seed_cands = List.filteri (fun i _ -> i < budget) seed_cands in
  let seeded = List.length seed_cands in
  let phase0 =
    List.mapi
      (fun i (s, plan) ->
        let rng = Backend.candidate_rng ~seed i in
        let plan =
          match plan with
          | Some p -> p
          | None ->
            Plan.random rng ~links:s.Scenario.links ~horizon:s.Scenario.horizon
              ~episodes:(1 + Rng.int rng 4)
        in
        (s, plan, Rng.int rng 1_000_000))
      seed_cands
  in
  let eval cands =
    Pool.map ?domains
      (fun (s, plan, inj) -> Backend.evaluate s ~seed:inj plan)
      cands
  in
  let seen = Hashtbl.create 64 in
  let found = ref [] and live = ref [] in
  let absorb ~into_live cands results =
    List.iter2
      (fun (s, plan, inj) (violations, sg) ->
        let novel = not (Hashtbl.mem seen sg) in
        if novel then Hashtbl.add seen sg ();
        if violations <> [] then
          found :=
            Backend.resolve ?corpus_dir s ~seed:inj ~plan violations :: !found
        else if into_live || novel then live := { scenario = s; plan } :: !live)
      cands results
  in
  (* every clean phase-0 entry is a parent, novel signature or not *)
  absorb ~into_live:true phase0 (eval phase0);
  if !live = [] then
    (* pathological seed corpus (everything violates): fall back to the
       empty plan per scenario so mutation still has parents *)
    live := List.rev_map (fun s -> { scenario = s; plan = [] }) scenarios;
  let frontier = ref [ Hashtbl.length seen ] in
  let runs = ref seeded in
  while !runs < budget do
    let parents = Array.of_list (List.rev !live) in
    let n = min batch (budget - !runs) in
    let cands =
      List.init n (fun k ->
          let rng = Backend.candidate_rng ~seed (!runs + k) in
          let parent = parents.(Rng.int rng (Array.length parents)) in
          let s = parent.scenario in
          let plan = ref parent.plan in
          for _ = 1 to 1 + Rng.int rng 3 do
            plan :=
              Plan.mutate rng ~links:s.Scenario.links
                ~horizon:s.Scenario.horizon !plan
          done;
          (s, !plan, Rng.int rng 1_000_000))
    in
    absorb ~into_live:false cands (eval cands);
    runs := !runs + n;
    frontier := Hashtbl.length seen :: !frontier
  done;
  {
    Backend.backend = name;
    runs = !runs;
    seeded;
    space = 0;
    certified = false;
    frontier = List.rev !frontier;
    found = Backend.dedupe_found (List.rev !found);
  }
