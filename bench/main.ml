(* The reproduction harness.

   Part 1 regenerates every experiment in DESIGN.md's index (E1-E13):
   the paper has no numbered tables or figures, so each experiment
   operationalizes one qualitative claim from the text, prints the
   table, and checks the claim's shape.

   Part 2 runs bechamel microbenchmarks (B1-B13) over the substrate hot
   paths: the event loop, Dijkstra, path-vector convergence, the Nash
   solver, policy evaluation, trust-graph queries, and the
   million-consumer market best-response loop.

   Run with: dune exec bench/main.exe
   Options:  --experiments-only | --bench-only | --experiment <id>
             --domains <n> | --seq   (parallel experiment runner)
             --metrics               (print the telemetry table)
             --trace <file>          (write Chrome trace-event JSON)
             --report <file>         (write the battery report JSON)
             --fault-seed <n>        (seed for fault-injecting experiments)
             --timeout-s <s>         (per-experiment watchdog; default off)
             --sweep                 (statistical sweep instead of the battery)
             --sweep-seed <n> | --sweep-runs <n> | --alpha <a>
                                     (sweep parameters; validated even
                                      without --sweep, exit 2 on garbage)
             --search                (adversarial fault-plan search instead
                                      of the battery; seeded by --sweep-seed)
             --backend <name> | --budget <n>
                                     (search parameters; validated even
                                      without --search, exit 2 on garbage) *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Topology = Tussle_netsim.Topology
module Linkstate = Tussle_routing.Linkstate
module Pathvector = Tussle_routing.Pathvector
module Normal_form = Tussle_gametheory.Normal_form
module Nash = Tussle_gametheory.Nash
module Zerosum = Tussle_gametheory.Zerosum
module Parser = Tussle_policy.Parser
module Eval = Tussle_policy.Eval
module Trust_graph = Tussle_trust.Trust_graph

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks *)

let bench_engine () =
  (* B1: schedule + run 10k chained events *)
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if !count < 10_000 then ignore (Engine.schedule_after engine 0.001 tick)
  in
  count := 0;
  ignore (Engine.schedule e 0.0 tick);
  Engine.run e

let dijkstra_graph =
  lazy
    (let rng = Rng.create 9001 in
     Topology.barabasi_albert rng 500 3)

let bench_dijkstra () =
  let g = Lazy.force dijkstra_graph in
  ignore (Graph.dijkstra g ~weight:(fun e -> e.Topology.latency) ~source:0)

let pv_topology =
  lazy
    (let rng = Rng.create 9002 in
     (Topology.two_tier rng ~transits:4 ~accesses:12 ~hosts_per_access:2
        ~multihoming:2)
       .Topology.graph)

let bench_pathvector () = ignore (Pathvector.compute (Lazy.force pv_topology))

let bench_nash () =
  ignore (Nash.support_enumeration Normal_form.battle_of_sexes);
  ignore (Nash.support_enumeration Normal_form.chicken)

let bench_zerosum () =
  ignore
    (Zerosum.solve ~iterations:1000
       (Normal_form.row_matrix Normal_form.matching_pennies))

let policy_fixture =
  lazy
    (let p =
       Parser.parse
         "root says allow isp connect on backbone delegable. \
          isp says allow reseller connect on backbone delegable. \
          reseller says allow customer connect on backbone where port == 25. \
          root says deny eve * on *."
     in
     let req =
       { Eval.subject = "customer"; action = "connect"; resource = "backbone";
         attributes = [ ("port", Tussle_policy.Ast.Int 25) ] }
     in
     (p, req))

let bench_policy () =
  let p, req = Lazy.force policy_fixture in
  ignore (Eval.decide ~root:"root" p req)

let trust_fixture =
  lazy
    (let rng = Rng.create 9003 in
     let g = Trust_graph.create 200 in
     for _ = 1 to 1000 do
       let a = Rng.int rng 200 and b = Rng.int rng 200 in
       if a <> b then
         Trust_graph.set_trust g ~truster:a ~trustee:b (Rng.float rng 1.0)
     done;
     g)

let bench_trust () =
  let g = Lazy.force trust_fixture in
  ignore (Trust_graph.derived_trust g ~truster:0 ~trustee:199)

let bench_congestion () =
  let kinds = Array.make 10 Tussle_netsim.Congestion.Compliant in
  kinds.(0) <- Tussle_netsim.Congestion.Aggressive;
  let cfg = Tussle_netsim.Congestion.default_config ~kinds in
  ignore (Tussle_netsim.Congestion.run cfg Tussle_netsim.Congestion.Fair_queueing)

let multicast_fixture =
  lazy
    (let rng = Rng.create 9004 in
     let g = Topology.barabasi_albert rng 200 2 in
     let receivers = List.init 80 (fun i -> i + 1) in
     (g, receivers))

let bench_multicast () =
  let g, receivers = Lazy.force multicast_fixture in
  ignore (Tussle_routing.Multicast.shortest_path_tree g ~source:0 ~receivers)

let bench_payment () =
  let l = Tussle_econ.Payment.create ~parties:16 ~initial:1000.0 in
  for i = 0 to 199 do
    ignore
      (Tussle_econ.Payment.pay_path l ~payer:(i mod 16)
         ~hops:[ (((i + 1) mod 16), 0.5); (((i + 2) mod 16), 0.5) ])
  done;
  ignore (Tussle_econ.Payment.settle_bilateral l)

let bench_transport () =
  let g = Graph.create 2 in
  Graph.add_undirected g 0 1
    (Tussle_netsim.Link.make ~queue_capacity:16 ~latency:0.005
       ~bandwidth_bps:2e6 ());
  let net =
    Tussle_netsim.Net.create g (fun ~node ~target _ ->
        if target <> node then Some target else None)
  in
  let engine = Engine.create () in
  let gen = Tussle_netsim.Traffic.create (Rng.create 9005) in
  let c =
    Tussle_netsim.Transport.start engine net gen ~src:0 ~dst:1
      ~total_packets:200
  in
  Engine.run ~until:120.0 engine;
  assert (Tussle_netsim.Transport.completed c)

let bench_selfheal () =
  (* one full outage lifecycle on a 12-ring: hello sampling, down
     detection, SPF + table swap, restoration, second swap *)
  let links = Topology.to_links (Topology.ring 12) in
  let net = Tussle_netsim.Net.create links (fun ~node:_ ~target:_ _ -> None) in
  let engine = Engine.create () in
  let heal = Tussle_routing.Selfheal.attach ~until:1.0 engine net in
  Tussle_fault.Inject.install ~seed:9006
    ~plan:
      [ Tussle_fault.Plan.Link_down
          { u = 0; v = 1; w = Tussle_fault.Plan.window 0.13 0.61 } ]
    engine net;
  Engine.run engine;
  assert (Tussle_routing.Selfheal.reconvergences heal = 2)

let bench_chaos_run () =
  (* one chaos sweep run end to end: derive the plan, simulate the
     scenario, check every invariant *)
  let r = Tussle_chaos.Sweep.run_one ~master_seed:9007 0 in
  assert (r.Tussle_chaos.Sweep.violations = [])

let bench_market_1m () =
  (* B13: the million-consumer price-competition run the experiments
     stop short of (E1/E3 run at 10^5); bench-only so the battery's
     wall budget is unaffected.  Few periods: the point is the
     per-period O(n*m) inner loop, not convergence. *)
  let cfg =
    {
      Tussle_econ.Market.default_config with
      Tussle_econ.Market.n_consumers = 1_000_000;
      Tussle_econ.Market.n_providers = 4;
      Tussle_econ.Market.periods = 5;
    }
  in
  let r = Tussle_econ.Market.run (Rng.create 9008) cfg in
  assert (r.Tussle_econ.Market.subscribed_ratio > 0.0)

let microbenchmarks () =
  let open Bechamel in
  let test name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"tussle" ~fmt:"%s %s"
      [
        test "B1 event-loop (10k events)" bench_engine;
        test "B2 dijkstra (BA-500)" bench_dijkstra;
        test "B3 path-vector convergence (64 AS)" bench_pathvector;
        test "B4 nash support enumeration" bench_nash;
        test "B5 zero-sum fictitious play (1k iters)" bench_zerosum;
        test "B6a policy eval (delegation chain)" bench_policy;
        test "B6b trust-graph derived trust" bench_trust;
        test "B7 AIMD fluid model (10 flows, 400 rounds)" bench_congestion;
        test "B8 multicast tree (BA-200, 80 receivers)" bench_multicast;
        test "B9 payment ledger (200 payments + settle)" bench_payment;
        test "B10 closed-loop transport (200 pkts)" bench_transport;
        test "B11 self-heal reconvergence (12-ring outage)" bench_selfheal;
        test "B12 chaos run (plan + sim + invariants)" bench_chaos_run;
        test "B13 market best-response (10^6 consumers)" bench_market_1m;
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let estimate =
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.sprintf "%15.1f" est
          | Some [] | None -> Printf.sprintf "%15s" "n/a"
        in
        (name, estimate) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "## Microbenchmarks (bechamel, monotonic clock)\n\n";
  Printf.printf "%-50s %15s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter (fun (name, est) -> Printf.printf "%-50s %s\n" name est) rows

(* ------------------------------------------------------------------ *)

let () =
  Printexc.record_backtrace true;
  let args = Array.to_list Sys.argv in
  let experiments_only = List.mem "--experiments-only" args in
  let bench_only = List.mem "--bench-only" args in
  let single =
    let rec find = function
      | "--experiment" :: id :: _ -> Some id
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let flag_value name =
    let prefix = name ^ "=" in
    let plen = String.length prefix in
    let rec find = function
      | flag :: v :: _ when flag = name -> Some v
      | flag :: _
        when String.length flag >= plen && String.sub flag 0 plen = prefix ->
        Some (String.sub flag plen (String.length flag - plen))
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let domains =
    if List.mem "--seq" args then Some 1
    else
      match flag_value "--domains" with
      | None -> None
      | Some s -> (
        (* Reject garbage with exit 2, like --domains 0: a typo must
           never silently fall back to the default domain count. *)
        match Tussle_prelude.Pool.domains_of_string s with
        | Ok d -> Some d
        | Error msg ->
          prerr_endline ("main: --domains: " ^ msg);
          exit 2)
  in
  let timeout_s =
    match flag_value "--timeout-s" with
    | None -> None
    | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some t when t > 0.0 && Float.is_finite t -> Some t
      | Some _ | None ->
        Printf.eprintf
          "main: --timeout-s: invalid timeout %S (expected a positive \
           number of seconds)\n" s;
        exit 2)
  in
  (match flag_value "--fault-seed" with
  | None -> ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Tussle_fault.Seed.set n
    | None ->
      Printf.eprintf "main: --fault-seed: invalid fault seed %S (expected \
                      an integer)\n" s;
      exit 2));
  (* Sweep flags are validated whenever present — same exit-2
     convention as --domains — so a typo never silently runs the
     default sweep. *)
  let sweep_mode = List.mem "--sweep" args in
  let sweep_seed =
    match flag_value "--sweep-seed" with
    | None -> 1031
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
        Printf.eprintf
          "main: --sweep-seed: invalid seed %S (expected an integer)\n" s;
        exit 2)
  in
  let sweep_runs =
    match flag_value "--sweep-runs" with
    | None -> 12
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 2 -> n
      | Some _ | None ->
        Printf.eprintf
          "main: --sweep-runs: invalid run count %S (expected an integer >= \
           2)\n" s;
        exit 2)
  in
  let alpha =
    match flag_value "--alpha" with
    | None -> 0.01
    | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some a when a > 0.0 && a < 1.0 -> a
      | Some _ | None ->
        Printf.eprintf
          "main: --alpha: invalid significance level %S (expected a number \
           strictly between 0 and 1)\n" s;
        exit 2)
  in
  (* Search flags: validated whenever present, same convention. *)
  let search_mode = List.mem "--search" args in
  let search_backend =
    match flag_value "--backend" with
    | None -> "mutate"
    | Some s ->
      let b = String.trim s in
      if List.mem b Tussle_search.Driver.backend_names then b
      else begin
        Printf.eprintf "main: --backend: invalid backend %S (expected %s)\n" s
          (String.concat " or " Tussle_search.Driver.backend_names);
        exit 2
      end
  in
  let search_budget =
    match flag_value "--budget" with
    | None -> 200
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
        Printf.eprintf
          "main: --budget: invalid budget %S (expected an integer >= 1)\n" s;
        exit 2)
  in
  let trace_file = flag_value "--trace" in
  let report_file = flag_value "--report" in
  let metrics = List.mem "--metrics" args in
  if metrics || report_file <> None then Tussle_obs.Metrics.enable ();
  if trace_file <> None then Tussle_obs.Trace.enable ();
  let emit_report ~wall_s outcomes =
    match report_file with
    | None -> ()
    | Some file ->
      let domains =
        match domains with
        | Some d -> d
        | None -> Tussle_prelude.Pool.default_domains ()
      in
      let r = Tussle_experiments.Registry.report ~domains ~wall_s outcomes in
      (try Tussle_obs.Report.write file r
       with Sys_error msg ->
         prerr_endline ("main: --report: " ^ msg);
         exit 2);
      print_newline ();
      print_string (Tussle_obs.Report.summary r)
  in
  let finish code =
    (match trace_file with
    | Some f -> Tussle_obs.Trace.write_chrome f
    | None -> ());
    if metrics then begin
      print_newline ();
      print_string (Tussle_obs.Metrics.render (Tussle_obs.Metrics.snapshot ()))
    end;
    exit code
  in
  if sweep_mode then begin
    (* statistical sweep instead of the battery/microbenchmarks: same
       driver, summary and gates as `tussle sweep` *)
    let report, errors =
      Tussle_sweep.Driver.run_sweep ?domains ?timeout_s ~seed:sweep_seed
        ~runs:sweep_runs ~alpha
        (Tussle_experiments.Registry.sweepables ())
    in
    print_string (Tussle_obs.Sweep_report.summary report);
    List.iter
      (fun e -> prerr_endline ("main: " ^ Tussle_sweep.Driver.error_string e))
      errors;
    let violations = Tussle_sweep.Driver.check_report report in
    List.iter
      (fun v ->
        prerr_endline
          ("main: report invariant violated: "
          ^ Tussle_chaos.Invariant.violation_string v))
      violations;
    let total, passed = Tussle_obs.Sweep_report.count_verdicts report in
    finish
      (if errors <> [] || violations <> [] || passed < total then 1 else 0)
  end;
  if search_mode then begin
    (* adversarial fault-plan search instead of the battery: same
       driver, summary and gates as `tussle search`, without corpus
       persistence (bench never writes into the repo) *)
    match
      Tussle_search.Driver.run ?domains ~backend:search_backend
        ~seed:sweep_seed ~budget:search_budget ()
    with
    | Error msg ->
      prerr_endline ("main: --backend: " ^ msg);
      exit 2
    | Ok (report, _) ->
      print_string (Tussle_obs.Search_report.summary report);
      let violations = Tussle_chaos.Invariant.check_search_report report in
      List.iter
        (fun v ->
          prerr_endline
            ("main: report invariant violated: "
            ^ Tussle_chaos.Invariant.violation_string v))
        violations;
      finish
        (if violations <> [] || report.Tussle_obs.Search_report.findings <> []
         then 1
         else 0)
  end;
  match single with
  | Some id -> begin
    match Tussle_experiments.Registry.run_one ?timeout_s id with
    | Ok o ->
      emit_report ~wall_s:o.Tussle_experiments.Experiment.wall_s [ o ];
      finish (if Tussle_experiments.Experiment.held o then 0 else 1)
    | Error msg ->
      prerr_endline msg;
      exit 2
  end
  | None ->
    let ok =
      if bench_only then true
      else begin
        Printf.printf
          "# Tussle in Cyberspace: reproduction harness\n\n\
           The paper is a position paper with no tables or figures; each\n\
           experiment below regenerates one of its qualitative claims\n\
           (see DESIGN.md section 3 for the index).\n\n";
        let ok, outcomes, wall_s =
          Tussle_experiments.Registry.run_battery ?domains ?timeout_s ()
        in
        emit_report ~wall_s outcomes;
        ok
      end
    in
    if not experiments_only then begin
      print_newline ();
      microbenchmarks ()
    end;
    finish (if ok then 0 else 1)
